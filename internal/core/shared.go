package core

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"dfdeques/internal/deque"
	"dfdeques/internal/rtrace"
)

// SharedPool is the concurrency-safe counterpart of Pool: the same
// DFDeques ready pool (the ordered deque list R plus the owner/thief
// protocol of §3.2–3.3), but synchronized fine-grained instead of behind
// one caller-supplied scheduler lock.
//
// Synchronization design (see DESIGN.md §5, "beyond the paper"):
//
//   - Every deque carries its own lock (deque.Deque.Mu). The owner's hot
//     path — PushOwn on fork, PopOwn on block — takes only that lock, so
//     forks and joins on different workers never contend with each other
//     or with the rest of the runtime.
//   - R's spine (membership and left-to-right order) is guarded by an
//     RWMutex. Only operations that change membership take it exclusively:
//     Steal (pop-bottom + insert-right must be one linearization point, or
//     two thieves hitting one victim could insert their deques in inverted
//     priority order), deque deletion, and the woken-thread insert. The
//     read side covers cheap observations.
//   - A pool-wide atomic counter of ready threads makes HasWork lock-free,
//     so idle workers can poll for work without touching any lock.
//
// Lock order, here and in internal/grt: R spine → deque.Mu → (the
// runtime's priority-list lock, taken inside the less callback). All pool
// methods are safe for concurrent use; methods taking a worker index w
// must only be called by worker w.
type SharedPool[T any] struct {
	p    int
	less func(a, b T) bool

	listMu sync.RWMutex
	r      deque.List[T]
	own    []atomic.Pointer[deque.Deque[T]] // own[w] written only by worker w

	// rngs[w] is worker w's private victim-selection stream, derived
	// deterministically from (run seed, w) by WorkerSeed: same-seed runs
	// draw the same victim sequences per worker, and the steal path never
	// serializes on a shared generator.
	rngs []*rand.Rand

	// Tracing (nil probe: disabled). deqID is the next deque id, advanced
	// under the spine lock where every deque is created.
	probe rtrace.Probe
	tidOf func(T) int64
	deqID int64

	ready   atomic.Int64 // stealable threads across all deques in R
	maxR    atomic.Int64
	steals  atomic.Int64
	failed  atomic.Int64
	local   atomic.Int64
	listOps atomic.Int64 // exclusive acquisitions of the R spine lock
}

// NewSharedPool builds a concurrent pool for p workers; the parameters
// mirror NewPool. less may acquire the caller's priority lock (it is
// invoked with the spine and at most one deque lock held, never more).
// seed determines every worker's private victim-selection stream.
func NewSharedPool[T any](p int, less func(a, b T) bool, seed int64) *SharedPool[T] {
	if p < 1 {
		panic("core: pool needs at least one worker")
	}
	pl := &SharedPool[T]{
		p:    p,
		less: less,
		own:  make([]atomic.Pointer[deque.Deque[T]], p),
		rngs: make([]*rand.Rand, p),
	}
	for w := range pl.rngs {
		pl.rngs[w] = rand.New(rand.NewSource(WorkerSeed(seed, w)))
	}
	return pl
}

// WorkerSeed derives worker w's private RNG seed from the run seed with a
// splitmix64-style mixer, so per-worker streams are decorrelated while the
// whole run stays a pure function of one seed.
func WorkerSeed(seed int64, w int) int64 {
	z := uint64(seed) + uint64(w+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Instrument attaches a trace probe; tid extracts a thread's stable id for
// the event payloads. Call before the pool is shared (before Seed).
func (pl *SharedPool[T]) Instrument(p rtrace.Probe, tid func(T) int64) {
	pl.probe = p
	pl.tidOf = tid
}

// trace records one event when a probe is attached. Structural events are
// recorded while the mutating lock is held, so their global sequence
// numbers linearize R's history (see internal/rtrace).
func (pl *SharedPool[T]) trace(w int, k rtrace.Kind, a, b, c int64) {
	if rtrace.Enabled && pl.probe != nil {
		pl.probe.Event(w, k, a, b, c)
	}
}

// lockList acquires the spine exclusively, counting the acquisition for
// the contention stats.
func (pl *SharedPool[T]) lockList() {
	pl.listMu.Lock()
	pl.listOps.Add(1)
}

// Seed places the root thread into a fresh, unowned deque at the left end
// of R, ready to be stolen by the first idle worker.
func (pl *SharedPool[T]) Seed(root T) {
	pl.lockList()
	d := pl.r.PushLeft()
	pl.deqID++
	d.ID = pl.deqID
	pl.trace(-1, rtrace.EvDequeCreate, d.ID, -1, 0)
	d.Mu.Lock()
	d.PushTop(root)
	if pl.tidOf != nil {
		pl.trace(-1, rtrace.EvPush, pl.tidOf(root), d.ID, 0)
	}
	d.Mu.Unlock()
	pl.noteR()
	pl.listMu.Unlock()
	pl.ready.Add(1)
}

// PushOwn pushes x onto worker w's deque top (the fork and preemption
// path). It touches only the deque's own lock. The worker must own a
// deque.
func (pl *SharedPool[T]) PushOwn(w int, x T) {
	d := pl.own[w].Load()
	if d == nil {
		panic("core: PushOwn without an owned deque")
	}
	d.Mu.Lock()
	d.PushTop(x)
	if pl.tidOf != nil {
		pl.trace(w, rtrace.EvPush, pl.tidOf(x), d.ID, 0)
	}
	d.Mu.Unlock()
	pl.ready.Add(1)
}

// PopOwn pops the top of w's deque. The non-empty case takes only the
// deque's lock; when the deque turns out empty it is deleted from R under
// the spine lock (only the owner adds items, so emptiness is stable once
// the owner observes it) and ok is false — the worker must steal next.
func (pl *SharedPool[T]) PopOwn(w int) (x T, ok bool) {
	d := pl.own[w].Load()
	if d == nil {
		return x, false
	}
	d.Mu.Lock()
	x, ok = d.PopTop()
	if ok && pl.tidOf != nil {
		pl.trace(w, rtrace.EvPop, pl.tidOf(x), d.ID, 0)
	}
	d.Mu.Unlock()
	if ok {
		pl.ready.Add(-1)
		pl.local.Add(1)
		return x, true
	}
	pl.lockList()
	d.Mu.Lock()
	if d.InList() { // a thief may have deleted it after draining it
		pl.r.Delete(d)
		pl.trace(w, rtrace.EvDequeRetire, d.ID, 0, 0)
	}
	d.Mu.Unlock()
	pl.listMu.Unlock()
	pl.own[w].Store(nil)
	return x, false
}

// GiveUp releases ownership of w's deque without popping (the
// quota-exhaustion and dummy-thread paths): the deque stays in R, unowned
// and stealable. An empty deque is deleted instead.
func (pl *SharedPool[T]) GiveUp(w int) {
	d := pl.own[w].Load()
	if d == nil {
		return
	}
	pl.lockList()
	d.Mu.Lock()
	if d.Empty() {
		if d.InList() {
			pl.r.Delete(d)
			pl.trace(w, rtrace.EvDequeRetire, d.ID, 0, 0)
		}
	} else {
		d.Owner = -1
		pl.trace(w, rtrace.EvDequeRelease, d.ID, 0, 0)
	}
	d.Mu.Unlock()
	pl.listMu.Unlock()
	pl.own[w].Store(nil)
}

// Steal performs one steal attempt for worker w: pick a uniformly random
// deque among the leftmost p in R, pop its bottom thread, and become
// owner of a new deque placed immediately to the victim's right. The
// whole attempt holds the spine lock exclusively — pop-bottom and
// insert-right form the steal's single linearization point, which is what
// keeps Lemma 3.1's left-to-right order intact when two thieves race on
// one victim — but it never blocks owners running on their own deques.
// ok is false if the attempt failed (nonexistent or empty victim). The
// worker must not own a deque.
func (pl *SharedPool[T]) Steal(w int) (x T, ok bool) {
	if pl.own[w].Load() != nil {
		panic("core: Steal while owning a deque")
	}
	c := pl.rngs[w].Intn(pl.p)
	pl.lockList()
	if c >= pl.r.Len() {
		pl.trace(w, rtrace.EvStealAttempt, -1, 0, 0)
		pl.listMu.Unlock()
		pl.failed.Add(1)
		return x, false
	}
	victim := pl.r.Kth(c)
	victim.Mu.Lock()
	pl.trace(w, rtrace.EvStealAttempt, victim.ID, 0, 0)
	x, ok = victim.PopBottom()
	if !ok {
		victim.Mu.Unlock()
		pl.listMu.Unlock()
		pl.failed.Add(1)
		return x, false
	}
	pl.ready.Add(-1)
	nd := pl.r.InsertRight(victim)
	nd.Owner = w
	pl.deqID++
	nd.ID = pl.deqID
	if pl.tidOf != nil {
		pl.trace(w, rtrace.EvSteal, pl.tidOf(x), victim.ID, nd.ID)
	}
	if victim.Empty() && victim.Owner == -1 {
		pl.r.Delete(victim)
		pl.trace(w, rtrace.EvDequeRetire, victim.ID, 0, 0)
	}
	victim.Mu.Unlock()
	pl.noteR()
	pl.listMu.Unlock()
	pl.own[w].Store(nd)
	pl.steals.Add(1)
	return x, true
}

// PushWoken places a thread woken by a blocking synchronization into a
// new deque at its priority position in R (§5's extension beyond the
// nested-parallel model), on behalf of the waking worker w. It scans R
// under the spine lock, peeking each deque's top under that deque's lock.
func (pl *SharedPool[T]) PushWoken(w int, x T) {
	pl.lockList()
	insertAt := pl.r.Len()
	for i := 0; i < pl.r.Len(); i++ {
		d := pl.r.Kth(i)
		d.Mu.Lock()
		top, ok := d.PeekTop()
		d.Mu.Unlock()
		if !ok {
			continue
		}
		if pl.less(x, top) {
			insertAt = i
			break
		}
	}
	var nd *deque.Deque[T]
	var after int64 = -1
	if insertAt == 0 {
		nd = pl.r.PushLeft()
	} else {
		left := pl.r.Kth(insertAt - 1)
		after = left.ID
		nd = pl.r.InsertRight(left)
	}
	pl.deqID++
	nd.ID = pl.deqID
	pl.trace(w, rtrace.EvDequeCreate, nd.ID, after, 1)
	nd.Mu.Lock()
	nd.PushTop(x)
	if pl.tidOf != nil {
		pl.trace(w, rtrace.EvPush, pl.tidOf(x), nd.ID, 0)
	}
	nd.Mu.Unlock()
	pl.noteR()
	pl.listMu.Unlock()
	pl.ready.Add(1)
}

// HasWork reports whether any deque in R holds a stealable thread. It is
// a single atomic load — idle workers poll it without taking any lock.
func (pl *SharedPool[T]) HasWork() bool { return pl.ready.Load() > 0 }

// Owns reports whether worker w currently owns a deque.
func (pl *SharedPool[T]) Owns(w int) bool { return pl.own[w].Load() != nil }

// Deques returns the current number of deques in R.
func (pl *SharedPool[T]) Deques() int {
	pl.listMu.RLock()
	defer pl.listMu.RUnlock()
	return pl.r.Len()
}

// MaxDeques returns the high-water mark of len(R).
func (pl *SharedPool[T]) MaxDeques() int { return int(pl.maxR.Load()) }

// Stats returns (successful steals, failed steal attempts, local
// dispatches).
func (pl *SharedPool[T]) Stats() (steals, failed, local int64) {
	return pl.steals.Load(), pl.failed.Load(), pl.local.Load()
}

// ListLockOps returns the number of exclusive spine-lock acquisitions —
// the fine-grained analogue of the coarse runtime's scheduler-lock count.
func (pl *SharedPool[T]) ListLockOps() int64 { return pl.listOps.Load() }

// noteR records the R-length high-water mark. Must hold the spine lock.
func (pl *SharedPool[T]) noteR() {
	n := int64(pl.r.Len())
	for {
		old := pl.maxR.Load()
		if n <= old || pl.maxR.CompareAndSwap(old, n) {
			return
		}
	}
}

// CheckInvariants verifies the Lemma 3.1 ordering over the pool's deques,
// exactly as Pool.CheckInvariants does. It freezes the pool by holding
// the spine lock for the whole scan, so it is meant for tests and
// quiescent moments, not steady-state use.
func (pl *SharedPool[T]) CheckInvariants(curr func(w int) (T, bool)) error {
	pl.lockList()
	defer pl.listMu.Unlock()
	// The spine lock freezes membership but not contents — owners push
	// and pop under only their deque's lock — so freeze every deque too.
	// Spine → deque is the normal order, and no pool path holds a deque
	// lock while waiting for the spine, so this cannot deadlock.
	for i := 0; i < pl.r.Len(); i++ {
		pl.r.Kth(i).Mu.Lock()
	}
	defer func() {
		for i := 0; i < pl.r.Len(); i++ {
			pl.r.Kth(i).Mu.Unlock()
		}
	}()
	shadow := Pool[T]{p: pl.p, less: pl.less}
	shadow.own = make([]*deque.Deque[T], pl.p)
	for w := range shadow.own {
		// Skip a deque already deleted from R (a worker between its
		// empty-pop delete and clearing its own pointer): it is not
		// frozen by the loop above and no longer participates in R's
		// ordering.
		if d := pl.own[w].Load(); d != nil && d.InList() {
			shadow.own[w] = d
		}
	}
	shadow.r = pl.r
	return shadow.CheckInvariants(curr)
}
