package core

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"dfdeques/internal/deque"
	"dfdeques/internal/rtrace"
)

// SharedPool is the concurrency-safe counterpart of Pool: the same
// DFDeques ready pool (the ordered deque list R plus the owner/thief
// protocol of §3.2–3.3), but synchronized fine-grained instead of behind
// one caller-supplied scheduler lock.
//
// Synchronization design (see DESIGN.md §5, "beyond the paper"):
//
//   - Every deque carries its own lock (deque.Deque.Mu) plus the biased
//     owner fast path (deque.OwnerAcquire): the owner's hot path — PushOwn
//     on fork, PopOwn on block — runs lock-free while no thief has
//     targeted the deque, and falls back to Mu (rebiasing on the way out)
//     once one has. Thieves always take Mu and Share the deque first.
//   - R's spine (membership and left-to-right order) is guarded by an
//     RWMutex. Only operations that change membership take it exclusively:
//     Steal (pop-bottom + insert-right must be one linearization point, or
//     two thieves hitting one victim could insert their deques in inverted
//     priority order), deque deletion, and the woken-thread insert. The
//     read side covers cheap observations — including Steal's screening
//     phase, which rejects an empty victim via SizeHint without ever
//     taking the spine exclusively.
//   - A pool-wide atomic counter of ready threads makes HasWork lock-free,
//     so idle workers can poll for work without touching any lock.
//   - Deques deleted from R are Reset onto a freelist (guarded by the
//     spine lock, which already covers every membership change) and reused
//     by the next steal or wake, so the steady-state steal cycle
//     allocates nothing. A deque is recycled only under the exclusive
//     spine lock and only after its owner pointer is cleared, so no
//     stale reference can observe the reuse.
//
// Lock order, here and in internal/grt: R spine → deque.Mu → (the
// runtime's priority-list lock, taken inside the less callback). All pool
// methods are safe for concurrent use; methods taking a worker index w
// must only be called by worker w.
type SharedPool[T comparable] struct {
	p    int
	less func(a, b T) bool

	listMu sync.RWMutex
	r      deque.List[T]
	own    []atomic.Pointer[deque.Deque[T]] // own[w] written only by worker w

	// rngs[w] is worker w's private victim-selection stream, derived
	// deterministically from (run seed, w) by WorkerSeed: same-seed runs
	// draw the same victim sequences per worker, and the steal path never
	// serializes on a shared generator. Seeded lazily at w's first steal
	// (each slot is touched only by its worker): math/rand's seeding fills
	// a 607-word feedback register, and paying that p times up front
	// dominates short runs' construction cost.
	rngs []*rand.Rand
	seed int64

	// free is the deque freelist, guarded by the spine lock: deques only
	// leave R under it, and only then may they be recycled.
	free []*deque.Deque[T]

	// Tracing (nil probe: disabled). deqID is the next deque id, advanced
	// under the spine lock where every deque is created.
	probe rtrace.Probe
	tidOf func(T) int64
	deqID int64

	ready   atomic.Int64 // stealable threads across all deques in R
	maxR    atomic.Int64
	steals  atomic.Int64
	failed  atomic.Int64
	local   atomic.Int64
	listOps atomic.Int64 // exclusive acquisitions of the R spine lock
}

// NewSharedPool builds a concurrent pool for p workers; the parameters
// mirror NewPool. less may acquire the caller's priority lock (it is
// invoked with the spine and at most one deque lock held, never more).
// seed determines every worker's private victim-selection stream.
func NewSharedPool[T comparable](p int, less func(a, b T) bool, seed int64) *SharedPool[T] {
	if p < 1 {
		panic("core: pool needs at least one worker")
	}
	return &SharedPool[T]{
		p:    p,
		less: less,
		own:  make([]atomic.Pointer[deque.Deque[T]], p),
		rngs: make([]*rand.Rand, p),
		seed: seed,
	}
}

// rng returns worker w's private victim-selection stream, seeding it on
// first use. Only worker w may call it.
func (pl *SharedPool[T]) rng(w int) *rand.Rand {
	r := pl.rngs[w]
	if r == nil {
		r = rand.New(rand.NewSource(WorkerSeed(pl.seed, w)))
		pl.rngs[w] = r
	}
	return r
}

// WorkerSeed derives worker w's private RNG seed from the run seed with a
// splitmix64-style mixer, so per-worker streams are decorrelated while the
// whole run stays a pure function of one seed.
func WorkerSeed(seed int64, w int) int64 {
	z := uint64(seed) + uint64(w+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Instrument attaches a trace probe; tid extracts a thread's stable id for
// the event payloads. Call before the pool is shared (before Seed).
func (pl *SharedPool[T]) Instrument(p rtrace.Probe, tid func(T) int64) {
	pl.probe = p
	pl.tidOf = tid
}

// trace records one event when a probe is attached. Structural events are
// recorded while the mutating lock is held, so their global sequence
// numbers linearize R's history (see internal/rtrace).
func (pl *SharedPool[T]) trace(w int, k rtrace.Kind, a, b, c int64) {
	if rtrace.Enabled && pl.probe != nil {
		pl.probe.Event(w, k, a, b, c)
	}
}

// lockList acquires the spine exclusively, counting the acquisition for
// the contention stats.
func (pl *SharedPool[T]) lockList() {
	pl.listMu.Lock()
	pl.listOps.Add(1)
}

// takeFree returns a reusable deque with a fresh ID. The caller must hold
// the spine lock exclusively and insert the deque into R before releasing
// it.
func (pl *SharedPool[T]) takeFree() *deque.Deque[T] {
	var d *deque.Deque[T]
	if n := len(pl.free); n > 0 {
		d = pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
	} else {
		d = deque.NewDeque[T]()
	}
	pl.deqID++
	d.ID = pl.deqID
	return d
}

// retire deletes d from R and recycles it. The caller must hold the spine
// lock exclusively but not d's Mu, and d must be empty and its own
// pointer already cleared: every other accessor reaches a deque through R
// under the spine lock, so nothing can observe the Reset or the reuse.
func (pl *SharedPool[T]) retire(w int, d *deque.Deque[T]) {
	pl.r.Delete(d)
	pl.trace(w, rtrace.EvDequeRetire, d.ID, 0, 0)
	d.Reset()
	pl.free = append(pl.free, d)
}

// Seed places the root thread into a fresh, unowned deque at the left end
// of R, ready to be stolen by the first idle worker.
func (pl *SharedPool[T]) Seed(root T) {
	pl.lockList()
	d := pl.takeFree()
	pl.r.PushLeftReuse(d)
	pl.trace(-1, rtrace.EvDequeCreate, d.ID, -1, 0)
	d.Mu.Lock()
	d.PushTop(root)
	if pl.tidOf != nil {
		pl.trace(-1, rtrace.EvPush, pl.tidOf(root), d.ID, 0)
	}
	d.Mu.Unlock()
	pl.noteR()
	pl.listMu.Unlock()
	pl.ready.Add(1)
}

// PushOwn pushes x onto worker w's deque top (the fork and preemption
// path). While the deque is unshared this is entirely lock-free (the
// biased fast path); once a thief has targeted it, it takes the deque's
// own lock and rebiases. The worker must own a deque. Traces are emitted
// inside the protected window either way, so a thief's later steal of x
// gets a later global sequence number than this push.
func (pl *SharedPool[T]) PushOwn(w int, x T) {
	d := pl.own[w].Load()
	if d == nil {
		panic("core: PushOwn without an owned deque")
	}
	if d.OwnerAcquire() {
		d.PushTop(x)
		if pl.tidOf != nil {
			pl.trace(w, rtrace.EvPush, pl.tidOf(x), d.ID, 0)
		}
		d.OwnerRelease()
	} else {
		d.Mu.Lock()
		d.PushTop(x)
		if pl.tidOf != nil {
			pl.trace(w, rtrace.EvPush, pl.tidOf(x), d.ID, 0)
		}
		d.Rebias()
		d.Mu.Unlock()
	}
	pl.ready.Add(1)
}

// PopOwn pops the top of w's deque. The non-empty case is lock-free on
// the biased fast path (or takes only the deque's lock once shared); when
// the deque turns out empty it is deleted from R under the spine lock
// (only the owner adds items, so emptiness is stable once the owner
// observes it) and ok is false — the worker must steal next.
func (pl *SharedPool[T]) PopOwn(w int) (x T, ok bool) {
	d := pl.own[w].Load()
	if d == nil {
		return x, false
	}
	if d.OwnerAcquire() {
		x, ok = d.PopTop()
		if ok && pl.tidOf != nil {
			pl.trace(w, rtrace.EvPop, pl.tidOf(x), d.ID, 0)
		}
		d.OwnerRelease()
	} else {
		d.Mu.Lock()
		x, ok = d.PopTop()
		if ok && pl.tidOf != nil {
			pl.trace(w, rtrace.EvPop, pl.tidOf(x), d.ID, 0)
		}
		d.Rebias()
		d.Mu.Unlock()
	}
	if ok {
		pl.ready.Add(-1)
		pl.local.Add(1)
		return x, true
	}
	// Empty: drop ownership and retire the deque. The own pointer is
	// cleared before the spine unlocks so no reference to the recycled
	// deque survives the critical section.
	pl.lockList()
	pl.own[w].Store(nil)
	if d.InList() { // a thief may have deleted it after draining it
		pl.retire(w, d)
	}
	pl.listMu.Unlock()
	return x, false
}

// PopOwnIf pops the top of w's deque only if it is exactly want,
// reporting whether it did. This is the continuation engine's inline-join
// claim: the parent may run its forked child in place of parking only
// when that child is still the top of the parent's own deque — untouched
// by thieves and undisplaced by woken threads — and the check and the pop
// must share the deque's one linearization point (PopTopIf under the
// owner protocol) or a racing bottom-steal of a single-item deque could
// double-claim the thread. A miss leaves the pool untouched: unlike
// PopOwn, an empty deque is NOT retired here, because the caller is still
// running and will push or pop again.
func (pl *SharedPool[T]) PopOwnIf(w int, want T) bool {
	d := pl.own[w].Load()
	if d == nil {
		return false
	}
	var ok bool
	if d.OwnerAcquire() {
		ok = d.PopTopIf(want)
		if ok && pl.tidOf != nil {
			pl.trace(w, rtrace.EvPop, pl.tidOf(want), d.ID, 0)
		}
		d.OwnerRelease()
	} else {
		d.Mu.Lock()
		ok = d.PopTopIf(want)
		if ok && pl.tidOf != nil {
			pl.trace(w, rtrace.EvPop, pl.tidOf(want), d.ID, 0)
		}
		d.Rebias()
		d.Mu.Unlock()
	}
	if ok {
		pl.ready.Add(-1)
		pl.local.Add(1)
	}
	return ok
}

// GiveUp releases ownership of w's deque without popping (the
// quota-exhaustion and dummy-thread paths): the deque stays in R, unowned
// and stealable. An empty deque is deleted instead. The exclusive spine
// lock alone freezes the deque here: thieves and invariant checkers reach
// deques only through R under the spine, and the one goroutine that works
// without it — the owner's biased fast path — is the caller itself.
func (pl *SharedPool[T]) GiveUp(w int) {
	d := pl.own[w].Load()
	if d == nil {
		return
	}
	pl.lockList()
	pl.own[w].Store(nil)
	if d.Empty() {
		if d.InList() {
			pl.retire(w, d)
		}
	} else {
		d.Owner = -1
		pl.trace(w, rtrace.EvDequeRelease, d.ID, 0, 0)
	}
	pl.listMu.Unlock()
}

// Steal performs one steal attempt for worker w: pick a uniformly random
// deque among the leftmost p in R, pop its bottom thread, and become
// owner of a new deque placed immediately to the victim's right.
//
// The attempt runs in two phases. A screening phase under the read lock
// checks the pick exists and its SizeHint is nonzero; the common failed
// attempt — an out-of-range pick or a provably empty victim — costs no
// exclusive spine acquisition at all, so a storm of unlucky thieves never
// serializes the owners' membership changes. Only a promising pick takes
// the spine exclusively and re-validates: pop-bottom and insert-right
// form the steal's single linearization point, which is what keeps Lemma
// 3.1's left-to-right order intact when two thieves race on one victim —
// but it never blocks owners running on their own deques.
//
// ok is false if the attempt failed (nonexistent or empty victim). The
// worker must not own a deque.
func (pl *SharedPool[T]) Steal(w int) (x T, ok bool) {
	if pl.own[w].Load() != nil {
		panic("core: Steal while owning a deque")
	}
	c := pl.rng(w).Intn(pl.p)
	pl.listMu.RLock()
	promising := c < pl.r.Len() && pl.r.Kth(c).SizeHint() > 0
	pl.listMu.RUnlock()
	if !promising {
		pl.trace(w, rtrace.EvStealAttempt, -1, 0, 0)
		pl.failed.Add(1)
		return x, false
	}
	pl.lockList()
	if c >= pl.r.Len() { // R shrank between the phases
		pl.trace(w, rtrace.EvStealAttempt, -1, 0, 0)
		pl.listMu.Unlock()
		pl.failed.Add(1)
		return x, false
	}
	victim := pl.r.Kth(c)
	victim.Mu.Lock()
	victim.Share()
	pl.trace(w, rtrace.EvStealAttempt, victim.ID, 0, 0)
	x, ok = victim.PopBottom()
	if !ok {
		victim.Mu.Unlock()
		pl.listMu.Unlock()
		pl.failed.Add(1)
		return x, false
	}
	pl.ready.Add(-1)
	nd := pl.takeFree()
	pl.r.InsertRightReuse(victim, nd)
	nd.Owner = w
	if pl.tidOf != nil {
		pl.trace(w, rtrace.EvSteal, pl.tidOf(x), victim.ID, nd.ID)
	}
	stale := victim.Empty() && victim.Owner == -1
	victim.Mu.Unlock()
	if stale {
		pl.retire(w, victim)
	}
	pl.noteR()
	pl.own[w].Store(nd)
	pl.listMu.Unlock()
	pl.steals.Add(1)
	return x, true
}

// PushWoken places a thread woken by a blocking synchronization into a
// new deque at its priority position in R (§5's extension beyond the
// nested-parallel model), on behalf of the waking worker w. It scans R
// under the spine lock, peeking each deque's top under that deque's lock.
func (pl *SharedPool[T]) PushWoken(w int, x T) {
	pl.lockList()
	insertAt := pl.r.Len()
	for i := 0; i < pl.r.Len(); i++ {
		d := pl.r.Kth(i)
		d.Mu.Lock()
		d.Share() // waits out the owner's in-flight fast-path op
		top, ok := d.PeekTop()
		d.Mu.Unlock()
		if !ok {
			continue
		}
		if pl.less(x, top) {
			insertAt = i
			break
		}
	}
	nd := pl.takeFree()
	var after int64 = -1
	if insertAt == 0 {
		pl.r.PushLeftReuse(nd)
	} else {
		left := pl.r.Kth(insertAt - 1)
		after = left.ID
		pl.r.InsertRightReuse(left, nd)
	}
	pl.trace(w, rtrace.EvDequeCreate, nd.ID, after, 1)
	nd.Mu.Lock()
	nd.PushTop(x)
	if pl.tidOf != nil {
		pl.trace(w, rtrace.EvPush, pl.tidOf(x), nd.ID, 0)
	}
	nd.Mu.Unlock()
	pl.noteR()
	pl.listMu.Unlock()
	pl.ready.Add(1)
}

// HasWork reports whether any deque in R holds a stealable thread. It is
// a single atomic load — idle workers poll it without taking any lock.
func (pl *SharedPool[T]) HasWork() bool { return pl.ready.Load() > 0 }

// Owns reports whether worker w currently owns a deque.
func (pl *SharedPool[T]) Owns(w int) bool { return pl.own[w].Load() != nil }

// Deques returns the current number of deques in R.
func (pl *SharedPool[T]) Deques() int {
	pl.listMu.RLock()
	defer pl.listMu.RUnlock()
	return pl.r.Len()
}

// MaxDeques returns the high-water mark of len(R).
func (pl *SharedPool[T]) MaxDeques() int { return int(pl.maxR.Load()) }

// Stats returns (successful steals, failed steal attempts, local
// dispatches).
func (pl *SharedPool[T]) Stats() (steals, failed, local int64) {
	return pl.steals.Load(), pl.failed.Load(), pl.local.Load()
}

// ListLockOps returns the number of exclusive spine-lock acquisitions —
// the fine-grained analogue of the coarse runtime's scheduler-lock count.
func (pl *SharedPool[T]) ListLockOps() int64 { return pl.listOps.Load() }

// noteR records the R-length high-water mark. Must hold the spine lock.
func (pl *SharedPool[T]) noteR() {
	n := int64(pl.r.Len())
	for {
		old := pl.maxR.Load()
		if n <= old || pl.maxR.CompareAndSwap(old, n) {
			return
		}
	}
}

// CheckInvariants verifies the Lemma 3.1 ordering over the pool's deques,
// exactly as Pool.CheckInvariants does. It freezes the pool by holding
// the spine lock for the whole scan, so it is meant for tests and
// quiescent moments, not steady-state use.
func (pl *SharedPool[T]) CheckInvariants(curr func(w int) (T, bool)) error {
	pl.lockList()
	defer pl.listMu.Unlock()
	// The spine lock freezes membership but not contents — owners push
	// and pop under only their deque's lock or the biased fast path — so
	// freeze every deque too: lock it and Share it, which waits out any
	// in-flight owner fast-path op and forces the owner onto the (held)
	// Mu. Spine → deque is the normal order, and no pool path holds a
	// deque lock while waiting for the spine, so this cannot deadlock.
	for i := 0; i < pl.r.Len(); i++ {
		d := pl.r.Kth(i)
		d.Mu.Lock()
		d.Share()
	}
	defer func() {
		for i := 0; i < pl.r.Len(); i++ {
			pl.r.Kth(i).Mu.Unlock()
		}
	}()
	shadow := Pool[T]{p: pl.p, less: pl.less}
	shadow.own = make([]*deque.Deque[T], pl.p)
	for w := range shadow.own {
		// Skip a deque already deleted from R (a worker between its
		// empty-pop delete and clearing its own pointer): it is not
		// frozen by the loop above and no longer participates in R's
		// ordering.
		if d := pl.own[w].Load(); d != nil && d.InList() {
			shadow.own[w] = d
		}
	}
	shadow.r = pl.r
	return shadow.CheckInvariants(curr)
}
