// Package core implements the heart of the paper's contribution — the
// DFDeques ready-thread pool (§3.2–3.3) — as an engine-independent data
// structure: the globally ordered list R of ready deques together with the
// owner/thief operations of algorithm DFDeques.
//
// The structure is deliberately free of threads, time, and locking so two
// very different engines can drive it:
//
//   - the machine simulator's DFDeques scheduler (internal/sched) drives a
//     Pool serially, using BeginRound/StealFrom for the §4.1 per-timestep
//     steal arbitration (at most one successful steal per deque per round)
//     and its ablation switches;
//   - the concurrent runtime's DFDeques policy (internal/policy) uses the
//     fine-grained SharedPool variant;
//   - tests drive both directly to property-check the Lemma 3.1 ordering
//     invariants without a machine in the loop.
package core

import (
	"fmt"
	"math/rand"

	"dfdeques/internal/deque"
)

// Pool is the DFDeques ready pool for p workers. It is NOT safe for
// concurrent use; callers serialize access (one mutex in practice, §5).
type Pool[T comparable] struct {
	p    int
	r    deque.List[T]
	own  []*deque.Deque[T]
	rng  *rand.Rand
	less func(a, b T) bool // 1DF priority: less = higher priority

	steals    int64
	failed    int64
	localDisp int64
	maxR      int

	// stolen arbitrates steals within one timestep of the simulator's cost
	// model (§4.1): at most one steal per deque per round succeeds. Only
	// StealFrom consults it; Steal (the real-time path) never does.
	stolen map[*deque.Deque[T]]bool
}

// NewPool builds a pool for p workers. less reports whether a has higher
// 1DF priority than b; it is used to place threads woken by
// synchronization (§5's extension) and by CheckInvariants. rng drives
// victim selection.
func NewPool[T comparable](p int, less func(a, b T) bool, rng *rand.Rand) *Pool[T] {
	if p < 1 {
		panic("core: pool needs at least one worker")
	}
	return &Pool[T]{
		p:    p,
		own:  make([]*deque.Deque[T], p),
		rng:  rng,
		less: less,
	}
}

// Seed places the root thread into a fresh, unowned deque at the left end
// of R, ready to be stolen by the first idle worker.
func (pl *Pool[T]) Seed(root T) {
	d := pl.r.PushLeft()
	d.PushTop(root)
	pl.noteR()
}

// PushOwn pushes x onto worker w's deque top (the fork and preemption
// path). The worker must own a deque.
func (pl *Pool[T]) PushOwn(w int, x T) {
	d := pl.own[w]
	if d == nil {
		panic("core: PushOwn without an owned deque")
	}
	d.PushTop(x)
}

// PopOwn pops the top of w's deque. When the deque is empty it is deleted
// from R (the give-up-and-delete step of the scheduling loop) and ok is
// false — the worker must steal next.
func (pl *Pool[T]) PopOwn(w int) (x T, ok bool) {
	d := pl.own[w]
	if d == nil {
		return x, false
	}
	if x, ok = d.PopTop(); ok {
		pl.localDisp++
		return x, true
	}
	pl.r.Delete(d)
	pl.own[w] = nil
	return x, false
}

// GiveUp releases ownership of w's deque without popping (the
// quota-exhaustion path): the deque stays in R, unowned and stealable. An
// empty deque is deleted instead.
func (pl *Pool[T]) GiveUp(w int) {
	d := pl.own[w]
	if d == nil {
		return
	}
	if d.Empty() {
		pl.r.Delete(d)
	} else {
		d.Owner = -1
	}
	pl.own[w] = nil
}

// Steal performs one steal attempt for worker w: pick a uniformly random
// deque among the leftmost p in R, pop its bottom thread, and become owner
// of a new deque placed immediately to the victim's right. ok is false if
// the attempt failed (nonexistent or empty victim). The worker must not
// own a deque.
func (pl *Pool[T]) Steal(w int) (x T, ok bool) {
	if pl.own[w] != nil {
		panic("core: Steal while owning a deque")
	}
	c := pl.rng.Intn(pl.p)
	if c >= pl.r.Len() {
		pl.failed++
		return x, false
	}
	victim := pl.r.Kth(c)
	x, ok = victim.PopBottom()
	if !ok {
		pl.failed++
		return x, false
	}
	nd := pl.r.InsertRight(victim)
	nd.Owner = w
	pl.own[w] = nd
	if victim.Empty() && victim.Owner == -1 {
		pl.r.Delete(victim)
	}
	pl.noteR()
	pl.steals++
	return x, true
}

// BeginRound starts a new steal round of the simulator's cost model:
// every deque becomes stealable again (§4.1 allows at most one successful
// steal per deque per timestep, arbitrated by StealFrom).
func (pl *Pool[T]) BeginRound() {
	if pl.stolen == nil {
		pl.stolen = make(map[*deque.Deque[T]]bool, pl.p)
	}
	clear(pl.stolen)
}

// StealFrom is the deterministic, arbitrated variant of Steal: the caller
// names the victim as an index c from the left end of R (the leftmost-p
// sample, with the window choice — and the randomness — in the caller's
// hands), and at most one StealFrom per deque succeeds between
// BeginRound calls. fromTop is the steal-from-top ablation: the thief
// takes the victim's newest thread instead of its bottom one, and its new
// deque goes to the victim's left to keep R roughly ordered. The worker
// must not own a deque.
func (pl *Pool[T]) StealFrom(w, c int, fromTop bool) (x T, ok bool) {
	if pl.own[w] != nil {
		panic("core: StealFrom while owning a deque")
	}
	if c >= pl.r.Len() {
		pl.failed++
		return x, false
	}
	victim := pl.r.Kth(c)
	if victim.Empty() || pl.stolen[victim] {
		pl.failed++
		return x, false
	}
	if pl.stolen == nil {
		pl.stolen = make(map[*deque.Deque[T]]bool, pl.p)
	}
	pl.stolen[victim] = true
	var nd *deque.Deque[T]
	if fromTop {
		x, _ = victim.PopTop()
		if pos := victim.Pos(); pos == 0 {
			nd = pl.r.PushLeft()
		} else {
			nd = pl.r.InsertRight(pl.r.Kth(pos - 1))
		}
	} else {
		x, _ = victim.PopBottom()
		nd = pl.r.InsertRight(victim)
	}
	nd.Owner = w
	pl.own[w] = nd
	if victim.Empty() && victim.Owner == -1 {
		pl.r.Delete(victim)
	}
	pl.noteR()
	pl.steals++
	return x, true
}

// PushWoken places a thread woken by a blocking synchronization into a new
// deque at its priority position in R (§5's extension beyond the
// nested-parallel model).
func (pl *Pool[T]) PushWoken(x T) {
	insertAt := pl.r.Len()
	for i := 0; i < pl.r.Len(); i++ {
		top, ok := pl.r.Kth(i).PeekTop()
		if !ok {
			continue
		}
		if pl.less(x, top) {
			insertAt = i
			break
		}
	}
	var nd *deque.Deque[T]
	if insertAt == 0 {
		nd = pl.r.PushLeft()
	} else {
		nd = pl.r.InsertRight(pl.r.Kth(insertAt - 1))
	}
	nd.PushTop(x)
	pl.noteR()
}

// HasWork reports whether any deque in R holds a stealable thread.
func (pl *Pool[T]) HasWork() bool {
	found := false
	pl.r.Walk(func(d *deque.Deque[T]) bool {
		if !d.Empty() {
			found = true
			return false
		}
		return true
	})
	return found
}

// Owns reports whether worker w currently owns a deque.
func (pl *Pool[T]) Owns(w int) bool { return pl.own[w] != nil }

// Deques returns the current number of deques in R.
func (pl *Pool[T]) Deques() int { return pl.r.Len() }

// MaxDeques returns the high-water mark of len(R).
func (pl *Pool[T]) MaxDeques() int { return pl.maxR }

// Stats returns (successful steals, failed steal attempts, local
// dispatches).
func (pl *Pool[T]) Stats() (steals, failed, local int64) {
	return pl.steals, pl.failed, pl.localDisp
}

func (pl *Pool[T]) noteR() {
	if n := pl.r.Len(); n > pl.maxR {
		pl.maxR = n
	}
}

// CheckInvariants verifies the Lemma 3.1 ordering over the pool's deques:
// every deque is priority-sorted top to bottom, and deques are ordered
// left to right by decreasing priority. curr gives each worker's currently
// executing thread (ok=false when idle) for clause (2).
func (pl *Pool[T]) CheckInvariants(curr func(w int) (T, bool)) error {
	for i := 0; i < pl.r.Len(); i++ {
		items := pl.r.Kth(i).Items()
		for j := 1; j < len(items); j++ {
			if !pl.less(items[j], items[j-1]) {
				return fmt.Errorf("core: lemma 3.1(1): deque %d unsorted at %d", i, j)
			}
		}
	}
	for w := 0; w < pl.p; w++ {
		d := pl.own[w]
		if d == nil {
			continue
		}
		x, running := curr(w)
		if !running {
			continue
		}
		if top, ok := d.PeekTop(); ok && !pl.less(x, top) {
			return fmt.Errorf("core: lemma 3.1(2): worker %d below its deque top", w)
		}
	}
	var havePrev bool
	var prevBottom T
	for i := 0; i < pl.r.Len(); i++ {
		d := pl.r.Kth(i)
		top, ok := d.PeekTop()
		if !ok {
			// Every operation deletes a deque it empties unless the owner
			// keeps it; an empty unowned deque would be unstealable dead
			// weight in R.
			if d.Owner == -1 {
				return fmt.Errorf("core: empty deque %d in R is unowned", i)
			}
			continue
		}
		if havePrev && !pl.less(prevBottom, top) {
			return fmt.Errorf("core: lemma 3.1(3): deque %d out of order", i)
		}
		prevBottom, _ = d.PeekBottom()
		havePrev = true
	}
	return nil
}
