package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dfdeques/internal/om"
)

// intPool builds a pool over ints where smaller = higher priority.
func intPool(p int, seed int64) *Pool[int] {
	return NewPool(p, func(a, b int) bool { return a < b }, rand.New(rand.NewSource(seed)))
}

func TestSeedAndFirstSteal(t *testing.T) {
	pl := intPool(4, 1)
	pl.Seed(10)
	if !pl.HasWork() {
		t.Fatal("seeded pool reports no work")
	}
	got := stealUntil(t, pl, 0)
	if got != 10 {
		t.Fatalf("stole %d, want 10", got)
	}
	if !pl.Owns(0) {
		t.Fatal("stealer should own a deque")
	}
	if pl.HasWork() {
		t.Fatal("pool should be drained")
	}
}

// stealUntil retries until the random victim pick succeeds.
func stealUntil(t *testing.T, pl *Pool[int], w int) int {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if x, ok := pl.Steal(w); ok {
			return x
		}
	}
	t.Fatal("steal never succeeded")
	return 0
}

func TestPushPopOwnLIFO(t *testing.T) {
	pl := intPool(2, 2)
	pl.Seed(1)
	stealUntil(t, pl, 0)
	pl.PushOwn(0, 5)
	pl.PushOwn(0, 4) // higher priority pushed later (deeper fork)
	if x, ok := pl.PopOwn(0); !ok || x != 4 {
		t.Fatalf("PopOwn = %d,%v want 4", x, ok)
	}
	if x, ok := pl.PopOwn(0); !ok || x != 5 {
		t.Fatalf("PopOwn = %d,%v want 5", x, ok)
	}
	// Third pop: empty deque is deleted, worker deque-less.
	if _, ok := pl.PopOwn(0); ok {
		t.Fatal("PopOwn on empty should fail")
	}
	if pl.Owns(0) {
		t.Fatal("deque should have been deleted")
	}
	if pl.Deques() != 0 {
		t.Fatalf("R should be empty, has %d", pl.Deques())
	}
}

func TestGiveUpLeavesDequeStealable(t *testing.T) {
	pl := intPool(2, 3)
	pl.Seed(1)
	stealUntil(t, pl, 0)
	pl.PushOwn(0, 7)
	pl.GiveUp(0)
	if pl.Owns(0) {
		t.Fatal("GiveUp did not release ownership")
	}
	if !pl.HasWork() {
		t.Fatal("given-up deque should remain stealable")
	}
	// Worker 1 steals the abandoned thread; the emptied unowned deque is
	// deleted.
	got := stealUntil(t, pl, 1)
	if got != 7 {
		t.Fatalf("stole %d, want 7", got)
	}
	if pl.Deques() != 1 { // only worker 1's new deque remains
		t.Fatalf("deques = %d, want 1", pl.Deques())
	}
}

func TestGiveUpEmptyDequeDeletes(t *testing.T) {
	pl := intPool(2, 4)
	pl.Seed(1)
	stealUntil(t, pl, 0)
	pl.GiveUp(0) // empty deque: must be deleted, not left in R
	if pl.Deques() != 0 {
		t.Fatalf("deques = %d, want 0", pl.Deques())
	}
}

func TestStealFromBottom(t *testing.T) {
	pl := intPool(2, 5)
	pl.Seed(1)
	stealUntil(t, pl, 0)
	pl.PushOwn(0, 3)
	pl.PushOwn(0, 2)
	// Worker 1 steals: must get the bottom (lowest-priority) thread, 3.
	got := stealUntil(t, pl, 1)
	if got != 3 {
		t.Fatalf("thief got %d, want bottom thread 3", got)
	}
}

func TestStealPanicsWhileOwning(t *testing.T) {
	pl := intPool(2, 6)
	pl.Seed(1)
	stealUntil(t, pl, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pl.Steal(0)
}

func TestPushOwnWithoutDequePanics(t *testing.T) {
	pl := intPool(2, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pl.PushOwn(0, 1)
}

func TestPushWokenOrdering(t *testing.T) {
	pl := intPool(4, 8)
	pl.Seed(5)
	stealUntil(t, pl, 0)
	pl.PushOwn(0, 6)
	pl.PushWoken(3) // higher priority than 6: must land left of it
	pl.PushWoken(9) // lower: lands at the right end
	if err := pl.CheckInvariants(func(w int) (int, bool) {
		if w == 0 {
			return 5, true
		}
		return 0, false
	}); err != nil {
		t.Fatal(err)
	}
	// Highest-priority stealable thread overall should be 3: verify a
	// leftmost-deque steal yields it.
	for i := 0; i < 1000; i++ {
		if x, ok := pl.Steal(1); ok {
			if x != 3 && x != 6 && x != 9 {
				t.Fatalf("stole unexpected %d", x)
			}
			return
		}
	}
	t.Fatal("no steal succeeded")
}

func TestMaxDequesTracksHighWater(t *testing.T) {
	pl := intPool(8, 9)
	pl.Seed(1)
	stealUntil(t, pl, 0)
	for i := 2; i < 10; i++ {
		pl.PushOwn(0, i)
	}
	pl.GiveUp(0)
	for w := 1; w < 5; w++ {
		stealUntil(t, pl, w)
	}
	if pl.MaxDeques() < 4 {
		t.Fatalf("MaxDeques = %d, want ≥ 4", pl.MaxDeques())
	}
}

// TestQuickRandomOpsInvariants drives the pool with random scripts of the
// operations a legal scheduler performs — a forked child's priority sits
// immediately above its parent's in the 1DF order, maintained with the
// same order-maintenance list the runtimes use — and checks the Lemma 3.1
// invariants after every step.
func TestQuickRandomOpsInvariants(t *testing.T) {
	f := func(script []uint8, seed int64) bool {
		const p = 4
		var prios om.List
		pl := NewPool(p, om.Less, rand.New(rand.NewSource(seed)))
		pl.Seed(prios.PushBack())
		curr := make([]*om.Record, p) // nil = idle
		for _, b := range script {
			w := int(b) % p
			switch (b / 4) % 4 {
			case 0: // steal if idle and deque-less
				if curr[w] == nil && !pl.Owns(w) {
					if x, ok := pl.Steal(w); ok {
						curr[w] = x
					}
				}
			case 1: // fork: push the parent, run the child, whose priority
				// is immediately above the parent's
				if curr[w] != nil && pl.Owns(w) {
					pl.PushOwn(w, curr[w])
					curr[w] = prios.InsertBefore(curr[w])
				}
			case 2: // terminate/suspend: pop own or go idle
				if curr[w] != nil && pl.Owns(w) {
					if x, ok := pl.PopOwn(w); ok {
						curr[w] = x
					} else {
						curr[w] = nil
					}
				}
			case 3: // quota exhaustion: push back and give up
				if curr[w] != nil && pl.Owns(w) {
					pl.PushOwn(w, curr[w])
					pl.GiveUp(w)
					curr[w] = nil
				}
			}
			err := pl.CheckInvariants(func(w int) (*om.Record, bool) {
				return curr[w], curr[w] != nil
			})
			if err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStealCycle(b *testing.B) {
	pl := intPool(4, 1)
	pl.Seed(1)
	stealUntil2(pl, 0)
	for i := 0; i < b.N; i++ {
		pl.PushOwn(0, i)
		pl.GiveUp(0)
		stealUntil2(pl, 0)
	}
}

func stealUntil2(pl *Pool[int], w int) int {
	for {
		if x, ok := pl.Steal(w); ok {
			return x
		}
	}
}
