// Package om implements an order-maintenance list: a sequence of records
// supporting O(1) order queries between any two records and amortized
// O(log n) insertion of a new record immediately before or after an
// existing one.
//
// DFDeques and the depth-first schedulers prioritize threads by their
// serial depth-first (1DF) execution order. That order is built
// incrementally — a forked child receives the priority immediately higher
// than its parent — so the scheduler needs exactly the operations this
// package provides: InsertBefore, InsertAfter, Delete, and Less.
//
// The implementation follows the classic tag-relabeling scheme (Dietz &
// Sleator; Bender et al.): each record carries a 62-bit integer tag, and
// order queries compare tags. When an insertion finds no free tag between
// its neighbors, the smallest enclosing power-of-two tag range whose
// density is below a geometrically growing threshold is relabeled
// uniformly.
package om

import "fmt"

// maxTagBits is the width of the tag space. Tags live in [0, 2^maxTagBits).
const maxTagBits = 62

// Record is an element of an order-maintenance list. The zero value is not
// usable; obtain Records from List.Front, InsertBefore, or InsertAfter.
type Record struct {
	tag        uint64
	prev, next *Record
	list       *List
}

// List is an order-maintenance list. The zero value is an empty list ready
// for use. A List is not safe for concurrent use.
type List struct {
	head, tail *Record // sentinels, lazily initialized
	n          int

	// free chains deleted records (linked through next) for reuse by the
	// next insertion. Scheduler workloads delete and insert records at the
	// fork/terminate rate, so recycling here removes one allocation per
	// thread from the runtime's hot path. Freed records are detached from
	// the head walk, so invariant checks never see them.
	free *Record
}

func (l *List) init() {
	if l.head != nil {
		return
	}
	l.head = &Record{tag: 0, list: l}
	l.tail = &Record{tag: 1 << maxTagBits, list: l}
	l.head.next = l.tail
	l.tail.prev = l.head
}

// Len reports the number of records in the list.
func (l *List) Len() int { return l.n }

// Front returns the first record, or nil if the list is empty.
func (l *List) Front() *Record {
	if l.head == nil || l.head.next == l.tail {
		return nil
	}
	return l.head.next
}

// Back returns the last record, or nil if the list is empty.
func (l *List) Back() *Record {
	if l.head == nil || l.tail.prev == l.head {
		return nil
	}
	return l.tail.prev
}

// Next returns the record after r, or nil if r is the last record.
func (r *Record) Next() *Record {
	if r.next == nil || r.next == r.list.tail {
		return nil
	}
	return r.next
}

// Prev returns the record before r, or nil if r is the first record.
func (r *Record) Prev() *Record {
	if r.prev == nil || r.prev == r.list.head {
		return nil
	}
	return r.prev
}

// PushFront inserts a new record at the front of the list.
func (l *List) PushFront() *Record {
	l.init()
	return l.insertBetween(l.head, l.head.next)
}

// PushBack inserts a new record at the back of the list.
func (l *List) PushBack() *Record {
	l.init()
	return l.insertBetween(l.tail.prev, l.tail)
}

// InsertBefore inserts a new record immediately before r and returns it.
func (l *List) InsertBefore(r *Record) *Record {
	if r.list != l {
		panic("om: InsertBefore on record from another list")
	}
	return l.insertBetween(r.prev, r)
}

// InsertAfter inserts a new record immediately after r and returns it.
func (l *List) InsertAfter(r *Record) *Record {
	if r.list != l {
		panic("om: InsertAfter on record from another list")
	}
	return l.insertBetween(r, r.next)
}

// Delete removes r from the list and recycles it for a later insertion.
// r must not be used afterwards.
func (l *List) Delete(r *Record) {
	if r.list != l {
		panic("om: Delete on record from another list")
	}
	r.prev.next = r.next
	r.next.prev = r.prev
	r.prev, r.list = nil, nil
	r.next = l.free
	l.free = r
	l.n--
}

// Less reports whether a precedes b in the list order. Both records must
// belong to the same list.
func Less(a, b *Record) bool {
	if a.list == nil || a.list != b.list {
		panic("om: Less on records from different lists")
	}
	return a.tag < b.tag
}

func (l *List) insertBetween(before, after *Record) *Record {
	if before.tag+1 >= after.tag {
		l.relabel(before)
		// relabel guarantees a gap between before and before.next; after
		// may have moved, so re-read it.
		after = before.next
	}
	r := l.free
	if r != nil {
		l.free = r.next
	} else {
		r = &Record{}
	}
	r.tag = before.tag + (after.tag-before.tag)/2
	r.prev, r.next, r.list = before, after, l
	before.next = r
	after.prev = r
	l.n++
	return r
}

// relabel redistributes tags so that a gap opens immediately after pivot.
// It finds the smallest enclosing power-of-two tag range whose density is
// below a threshold that decays geometrically with the range's level, then
// spreads the range's records uniformly across it.
func (l *List) relabel(pivot *Record) {
	// The sentinels' tags (0 and 2^maxTagBits) never change; relabeling
	// only moves interior records. Overflow density forces a full spread
	// in the worst case, which always succeeds because n << 2^62.
	const t = 1.38 // density threshold base; any 1 < t < 2 works
	level := 1
	lo, hi := rangeAround(pivot.tag, level)
	count, first := l.countInRange(pivot, lo, hi)
	thresh := 2.0 / t
	// Grow the range until the density is acceptable AND the range is wide
	// enough that uniform spreading leaves gaps of at least 2 between
	// consecutive tags (so the caller's midpoint insertion succeeds).
	for float64(count) >= thresh*float64(uint64(1)<<level) ||
		uint64(count+1) > (hi-lo)/2 {
		level++
		if level > maxTagBits {
			panic("om: tag space exhausted")
		}
		lo, hi = rangeAround(pivot.tag, level)
		count, first = l.countInRange(pivot, lo, hi)
		thresh /= t
	}
	// Spread the count records uniformly across (lo, hi]. Skip tag lo
	// itself in case a record outside the walk (or the head sentinel)
	// already holds it.
	width := (hi - lo) / uint64(count+1)
	tag := lo + width
	for r, i := first, 0; i < count; r, i = r.next, i+1 {
		r.tag = tag
		tag += width
	}
}

// rangeAround returns the aligned power-of-two tag range of the given
// level (width 2^level) that contains tag, as a half-open interval
// (lo, lo+2^level]; records strictly inside use tags in (lo, hi).
func rangeAround(tag uint64, level int) (lo, hi uint64) {
	width := uint64(1) << level
	lo = tag &^ (width - 1)
	return lo, lo + width
}

// countInRange walks outward from pivot and returns the number of
// non-sentinel records whose tags lie in (lo, hi), along with the first
// such record.
func (l *List) countInRange(pivot *Record, lo, hi uint64) (int, *Record) {
	first := pivot
	if first == l.head {
		first = first.next
		if first == l.tail {
			return 0, first
		}
	}
	for first.prev != l.head && first.prev.tag > lo {
		first = first.prev
	}
	count := 0
	for r := first; r != l.tail && r.tag < hi; r = r.next {
		count++
	}
	return count, first
}

// check verifies internal invariants; used by tests.
func (l *List) check() error {
	if l.head == nil {
		return nil
	}
	for r := l.head; r.next != nil; r = r.next {
		if r.next.prev != r {
			return fmt.Errorf("om: broken back link at tag %d", r.tag)
		}
		if r.next.tag <= r.tag {
			return fmt.Errorf("om: tags not strictly increasing: %d then %d", r.tag, r.next.tag)
		}
	}
	seen := 0
	for r := l.head.next; r != l.tail; r = r.next {
		seen++
	}
	if seen != l.n {
		return fmt.Errorf("om: length mismatch: counted %d, recorded %d", seen, l.n)
	}
	return nil
}
