package om

import "testing"

// FuzzInsertScript drives the order-maintenance list with arbitrary
// insertion/deletion scripts and verifies the structural invariants after
// every operation. Each script byte selects an operation and a target.
func FuzzInsertScript(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{10, 10, 10, 10, 10, 10, 10, 10})
	f.Add([]byte{255, 0, 255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4096 {
			script = script[:4096]
		}
		var l List
		var recs []*Record
		for _, b := range script {
			switch {
			case len(recs) == 0 || b < 64:
				recs = append(recs, l.PushBack())
			case b < 128:
				recs = append(recs, l.InsertBefore(recs[int(b)%len(recs)]))
			case b < 192:
				recs = append(recs, l.InsertAfter(recs[int(b)%len(recs)]))
			default:
				i := int(b) % len(recs)
				l.Delete(recs[i])
				recs = append(recs[:i], recs[i+1:]...)
			}
		}
		if err := l.check(); err != nil {
			t.Fatal(err)
		}
		if l.Len() != len(recs) {
			t.Fatalf("Len = %d, want %d", l.Len(), len(recs))
		}
	})
}
