package om

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyList(t *testing.T) {
	var l List
	if l.Len() != 0 {
		t.Fatalf("Len of empty list = %d, want 0", l.Len())
	}
	if l.Front() != nil || l.Back() != nil {
		t.Fatal("Front/Back of empty list should be nil")
	}
}

func TestPushFrontBackOrder(t *testing.T) {
	var l List
	a := l.PushBack()
	b := l.PushBack()
	c := l.PushFront()
	// order: c, a, b
	if !Less(c, a) || !Less(a, b) || !Less(c, b) {
		t.Fatal("PushFront/PushBack order wrong")
	}
	if Less(b, a) || Less(a, c) {
		t.Fatal("Less not antisymmetric")
	}
	if l.Front() != c || l.Back() != b {
		t.Fatal("Front/Back wrong")
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	var l List
	mid := l.PushBack()
	before := l.InsertBefore(mid)
	after := l.InsertAfter(mid)
	if !Less(before, mid) || !Less(mid, after) {
		t.Fatal("InsertBefore/InsertAfter order wrong")
	}
	if before.Next() != mid || mid.Next() != after || after.Prev() != mid {
		t.Fatal("links wrong")
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	var l List
	a := l.PushBack()
	b := l.InsertAfter(a)
	c := l.InsertAfter(b)
	l.Delete(b)
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if a.Next() != c || c.Prev() != a {
		t.Fatal("Delete did not relink")
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
}

// TestHotSpotInsertion hammers the pathological fork pattern: repeatedly
// inserting immediately before the same record, which halves the available
// tag gap every time and forces relabeling.
func TestHotSpotInsertion(t *testing.T) {
	var l List
	anchor := l.PushBack()
	recs := []*Record{anchor}
	for i := 0; i < 200000; i++ {
		r := l.InsertBefore(anchor)
		recs = append(recs, r)
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
	// Each later-inserted record precedes all earlier-inserted ones.
	for i := 1; i < len(recs); i += 7919 {
		if !Less(recs[i], anchor) {
			t.Fatalf("record %d should precede anchor", i)
		}
	}
	// Each insertion lands immediately before the anchor, i.e. after all
	// previously inserted records.
	for i := 2; i < len(recs); i += 4999 {
		if !Less(recs[i-1], recs[i]) {
			t.Fatalf("record %d should precede record %d", i-1, i)
		}
	}
}

// TestHotSpotAfter mirrors the hot-spot test on the InsertAfter side.
func TestHotSpotAfter(t *testing.T) {
	var l List
	anchor := l.PushBack()
	prev := anchor
	for i := 0; i < 100000; i++ {
		r := l.InsertAfter(anchor)
		if !Less(anchor, r) || !Less(r, prev) && prev != anchor {
			// r sits between anchor and the previously inserted record
			t.Fatalf("insert %d misordered", i)
		}
		prev = r
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomAgainstReference performs random insertions and deletions and
// compares the resulting order with a reference slice implementation.
func TestRandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var l List
	var ref []*Record // reference order
	for step := 0; step < 50000; step++ {
		switch {
		case len(ref) == 0 || rng.Intn(10) == 0:
			r := l.PushBack()
			ref = append(ref, r)
		case rng.Intn(10) == 1:
			i := rng.Intn(len(ref))
			l.Delete(ref[i])
			ref = append(ref[:i], ref[i+1:]...)
		default:
			i := rng.Intn(len(ref))
			if rng.Intn(2) == 0 {
				r := l.InsertBefore(ref[i])
				ref = append(ref, nil)
				copy(ref[i+1:], ref[i:])
				ref[i] = r
			} else {
				r := l.InsertAfter(ref[i])
				ref = append(ref, nil)
				copy(ref[i+2:], ref[i+1:])
				ref[i+1] = r
			}
		}
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(ref))
	}
	// Order must match the reference: ref is sorted under Less.
	if !sort.SliceIsSorted(ref, func(i, j int) bool { return Less(ref[i], ref[j]) }) {
		t.Fatal("list order diverged from reference")
	}
	// Walk must visit exactly the reference sequence.
	i := 0
	for r := l.Front(); r != nil; r = r.Next() {
		if ref[i] != r {
			t.Fatalf("walk mismatch at %d", i)
		}
		i++
	}
	if i != len(ref) {
		t.Fatalf("walk visited %d records, want %d", i, len(ref))
	}
}

// TestQuickTransitivity property-checks that Less is a strict total order
// over records created by an arbitrary insertion script.
func TestQuickTransitivity(t *testing.T) {
	f := func(script []uint8) bool {
		var l List
		var recs []*Record
		for _, b := range script {
			if len(recs) == 0 {
				recs = append(recs, l.PushBack())
				continue
			}
			i := int(b) % len(recs)
			if b%2 == 0 {
				recs = append(recs, l.InsertBefore(recs[i]))
			} else {
				recs = append(recs, l.InsertAfter(recs[i]))
			}
		}
		if l.check() != nil {
			return false
		}
		// Strict total order: exactly one of Less(a,b), Less(b,a) for a≠b,
		// and transitivity via tag comparison holds by construction; check
		// a random triple sample.
		rng := rand.New(rand.NewSource(int64(len(recs))))
		for k := 0; k < 50 && len(recs) >= 3; k++ {
			a, b, c := recs[rng.Intn(len(recs))], recs[rng.Intn(len(recs))], recs[rng.Intn(len(recs))]
			if a != b && Less(a, b) == Less(b, a) {
				return false
			}
			if Less(a, b) && Less(b, c) && !Less(a, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossListPanics(t *testing.T) {
	var l1, l2 List
	a := l1.PushBack()
	b := l2.PushBack()
	mustPanic(t, func() { Less(a, b) })
	mustPanic(t, func() { l1.InsertAfter(b) })
	mustPanic(t, func() { l1.InsertBefore(b) })
	mustPanic(t, func() { l1.Delete(b) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func BenchmarkHotSpotInsert(b *testing.B) {
	var l List
	anchor := l.PushBack()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.InsertBefore(anchor)
	}
}

func BenchmarkRandomInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var l List
	recs := []*Record{l.PushBack()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs = append(recs, l.InsertAfter(recs[rng.Intn(len(recs))]))
	}
}
