package dfdeques

import (
	"io"

	"dfdeques/internal/rtrace"
)

// The public tracing surface: record a real run's scheduling events
// through RuntimeConfig.Probe, then export the stream as Chrome
// trace_event JSON, summarize it, or replay-verify it against an
// independent model of the paper's scheduler. The cmd/dfdtrace tool wraps
// the same machinery for files on disk.

// TraceProbe receives one low-level event per scheduling action; plug one
// into RuntimeConfig.Probe. The only production implementation is
// *TraceRecorder; tests may supply their own.
type TraceProbe = rtrace.Probe

// TraceRecorder is a lock-free in-memory recorder of scheduling events,
// safe for concurrent use by all workers. Create one with
// NewTraceRecorder, run with it as RuntimeConfig.Probe, then pass it to
// ExportTrace, SummarizeTrace, or VerifyTrace.
type TraceRecorder = rtrace.Recorder

// TraceSummary is the compact per-run metrics report derived from a
// recorded stream (threads, jobs, dispatches, steals, per-worker busy
// fractions, ...).
type TraceSummary = rtrace.Summary

// TraceReport summarizes what a replay verification established: event
// and check counts, per-job outcomes, and whether the strict Lemma 3.1
// ordering checks stayed enabled end to end.
type TraceReport = rtrace.Report

// NewTraceRecorder builds a recorder for a runtime with the given worker
// count. perWorker is each worker's event-buffer capacity (rounded up to
// a power of two; 0 picks a default); if a buffer wraps, verification of
// the truncated stream is refused, so size generously for long runs.
func NewTraceRecorder(workers, perWorker int) *TraceRecorder {
	return rtrace.NewRecorder(workers, perWorker)
}

// ExportTrace writes the recorded run as Chrome trace_event JSON —
// loadable in chrome://tracing or Perfetto, with the raw event stream
// riding along so `dfdtrace -verify` can replay the same file.
func ExportTrace(w io.Writer, rec *TraceRecorder) error {
	return rtrace.Export(w, rec.Meta(), rec.Events(), rec.Dropped())
}

// SummarizeTrace derives the metrics summary from a recorded run.
func SummarizeTrace(rec *TraceRecorder) TraceSummary {
	return rtrace.Summarize(rec.Meta(), rec.Events(), rec.Dropped())
}

// VerifyTrace replays the recorded stream against an independent model of
// the scheduler, checking the paper's structural invariants (Lemma 3.1
// deque ordering, dispatch conservation, memory-quota accounting) on the
// real runtime's history. It returns an error describing the first
// violation, if any.
func VerifyTrace(rec *TraceRecorder) (TraceReport, error) {
	return rtrace.Verify(rec.Meta(), rec.Events(), rec.Dropped())
}

// VerifyTraceFile replays a trace file previously written by ExportTrace
// (or `dfdsim -real -trace`).
func VerifyTraceFile(r io.Reader) (TraceReport, error) {
	meta, evs, dropped, err := rtrace.Load(r)
	if err != nil {
		return TraceReport{}, err
	}
	return rtrace.Verify(meta, evs, dropped)
}
