module dfdeques

go 1.22
