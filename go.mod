module dfdeques

go 1.23
