#!/bin/sh
# Tier-1 verification (see ROADMAP.md): build, vet, full test suite, and
# a race-detector pass over the concurrency-bearing packages. The -race
# pass is not optional — the runtime's fine-grained engine is exactly the
# kind of code whose bugs only the race detector and the stress tests in
# internal/grt/race_test.go surface.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# staticcheck when available (CI installs it; local runs skip silently so
# the script stays dependency-free).
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
fi
go test ./...
go test -race ./internal/grt/... ./internal/deque/... ./internal/core/... ./internal/policy/... ./internal/rtrace/... ./internal/serve/...
# Serving-layer soak (short mode): 8 tenants over HTTP with one
# over-budget hog, asserting isolation (429s + budget kills for the hog
# only) and a leak-free drain. DFDSERVE_SOAK_SECS=120 runs the long one.
go test -race -short -run TestServeSoak -count=1 ./internal/serve/
# Lifecycle stress: cancellation, shutdown and drain paths repeated under
# the race detector — the park/wake, poison-sweep and job-retirement
# races only show up across many runs.
go test -race -run 'Cancel|Shutdown|Drain' -count=5 ./internal/grt/...
# The tracing hooks must also compile out cleanly (-tags grtnotrace folds
# every hook site away behind the rtrace.Enabled constant).
go build -tags grtnotrace ./...
