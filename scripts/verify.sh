#!/bin/sh
# Tier-1 verification (see ROADMAP.md): build, vet, full test suite, and
# a race-detector pass over the concurrency-bearing packages. The -race
# pass is not optional — the runtime's fine-grained engine is exactly the
# kind of code whose bugs only the race detector and the stress tests in
# internal/grt/race_test.go surface.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/grt/... ./internal/deque/... ./internal/core/... ./internal/policy/... ./internal/rtrace/...
# The tracing hooks must also compile out cleanly (-tags grtnotrace folds
# every hook site away behind the rtrace.Enabled constant).
go build -tags grtnotrace ./...
