#!/bin/sh
# Benchmark snapshot: runs the contention, speedup, runtime, simulator,
# steal-hot-path and serving-layer benchmarks and writes a
# machine-readable BENCH_<label>.json (one object per benchmark: op,
# ns_per_op, allocs_per_op, workers, engine, and jobs_per_sec where the
# benchmark reports it) for cross-commit comparison.
#
# usage: scripts/bench.sh [label]     (default label: short git commit)
#        BENCHTIME=1s scripts/bench.sh soak
#        scripts/bench.sh --compare OLD.json NEW.json
#                                    (print per-benchmark deltas)
set -eu

cd "$(dirname "$0")/.."

# --compare OLD.json NEW.json: join the two snapshots on the benchmark
# name and print the time and allocation deltas, flagging regressions.
if [ "${1:-}" = "--compare" ]; then
	[ $# -eq 3 ] || { echo "usage: scripts/bench.sh --compare OLD.json NEW.json" >&2; exit 2; }
	old="$2"; new="$3"
	awk -v oldfile="$old" -v newfile="$new" '
	function parse(file, ns, al,   line, op) {
		while ((getline line < file) > 0) {
			if (line !~ /"op":/) continue
			op = line; sub(/.*"op": "/, "", op); sub(/".*/, "", op)
			if (match(line, /"ns_per_op": [0-9.]+/))
				ns[op] = substr(line, RSTART + 13, RLENGTH - 13)
			if (match(line, /"allocs_per_op": [0-9.]+/))
				al[op] = substr(line, RSTART + 17, RLENGTH - 17)
			order[++n] = op
		}
		close(file)
	}
	BEGIN {
		parse(oldfile, ons, oal)
		n0 = n
		parse(newfile, nns, nal)
		printf "%-55s %12s %12s %8s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs"
		for (i = n0 + 1; i <= n; i++) {
			op = order[i]
			if (!(op in nns) || seen[op]++) continue
			if (op in ons) {
				d = (nns[op] - ons[op]) / ons[op] * 100
				flag = (d > 5 ? "  <-- slower" : "")
				da = ""
				if (op in oal && op in nal && oal[op] != "")
					da = sprintf("%+.0f", nal[op] - oal[op])
				printf "%-55s %12.0f %12.0f %+7.1f%% %9s%s\n", op, ons[op], nns[op], d, da, flag
			} else {
				printf "%-55s %12s %12.0f %8s %9s\n", op, "-", nns[op], "new", ""
			}
		}
	}' /dev/null
	exit 0
fi

label="${1:-$(git rev-parse --short HEAD)}"
benchtime="${BENCHTIME:-0.3s}"
out="BENCH_${label}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run='^$' -benchtime="$benchtime" -benchmem \
	-bench='^(BenchmarkGrtContention|BenchmarkGrtSpeedup|BenchmarkGrtForkJoinCost|BenchmarkGrtTrace|BenchmarkRuntimeForkJoin|BenchmarkSimulatorPerScheduler)$' \
	. | tee "$tmp"
# Second pass with the rtrace hook sites compiled out entirely: the
# BenchmarkGrtTrace/pN/compiledout row is the true zero-instrumentation
# baseline for the tracing-overhead comparison.
go test -tags grtnotrace -run='^$' -benchtime="$benchtime" -benchmem \
	-bench='^BenchmarkGrtTrace$' \
	. | tee -a "$tmp"
go test -run='^$' -benchtime="$benchtime" -benchmem \
	-bench='^(BenchmarkListKth|BenchmarkListInsertDelete|BenchmarkStealPattern|BenchmarkOwnerUnderStealStorm)$' \
	./internal/deque/ | tee -a "$tmp"
go test -run='^$' -benchtime="$benchtime" -benchmem \
	-bench='^BenchmarkStealCycle$' \
	./internal/core/ | tee -a "$tmp"
# End-to-end serving throughput: HTTP submit -> admission -> runtime ->
# response, reported as jobs/s alongside ns/op.
go test -run='^$' -benchtime="$benchtime" -benchmem \
	-bench='^BenchmarkServeThroughput$' \
	./internal/serve/ | tee -a "$tmp"

# Fold "Benchmark<Name>/<sub>-<gomaxprocs> N v1 unit1 v2 unit2 ..." lines
# into JSON. workers comes from a pN path element (0 = not applicable);
# engine is coarse/fine for the runtime benchmarks, sim for the simulator,
# struct for the bare data-structure benchmarks.
awk -v label="$label" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""; jps = ""
	for (i = 3; i < NF; i += 2) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "allocs/op") allocs = $i
		if ($(i + 1) == "jobs/s") jps = $i
	}
	workers = 0
	if (match(name, /\/p[0-9]+/)) workers = substr(name, RSTART + 2, RLENGTH - 2)
	engine = "struct"
	if (name ~ /\/channel/) engine = "channel"
	else if (name ~ /\/coarse/) engine = "coarse"
	else if (name ~ /\/fine/) engine = "fine"
	else if (name ~ /^BenchmarkGrtSpeedup/) engine = "fine"
	else if (name ~ /^BenchmarkGrtForkJoinCost/) engine = "fine"
	else if (name ~ /^BenchmarkGrtTrace/) engine = "fine"
	else if (name ~ /^BenchmarkRuntimeForkJoin/) { engine = "fine"; workers = 4 }
	else if (name ~ /^BenchmarkSimulator/) { engine = "sim"; workers = 8 }
	else if (name ~ /^BenchmarkServeThroughput/) engine = "serve"
	extra = (jps == "" ? "" : sprintf(", \"jobs_per_sec\": %s", jps))
	printf "%s{\"op\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"workers\": %s, \"engine\": \"%s\"%s}",
		(n++ ? ",\n  " : ""), name, ns, (allocs == "" ? "null" : allocs), workers, engine, extra
}
BEGIN { printf "{\n \"label\": \"" label "\",\n \"benchmarks\": [\n  " }
END { printf "\n ]\n}\n" }
' "$tmp" > "$out"

# Work-first payoff table: every benchmark that ran on both frame engines
# appears once, continuation ns/op against its /channel twin, with the
# channel/cont ratio (higher = bigger win for work-first execution).
awk '
/"op":/ {
	op = $0; sub(/.*"op": "/, "", op); sub(/".*/, "", op)
	if (match($0, /"ns_per_op": [0-9.]+/))
		nsfor[op] = substr($0, RSTART + 13, RLENGTH - 13)
	order[++n] = op
}
END {
	printed = 0
	for (i = 1; i <= n; i++) {
		op = order[i]
		if (op !~ /\/channel$/) continue
		cont = op; sub(/\/channel$/, "", cont)
		if (!(cont in nsfor) || nsfor[cont] == "" || nsfor[op] == "") continue
		if (!printed++)
			printf "\n%-48s %12s %12s %8s\n", "engine comparison", "cont ns/op", "chan ns/op", "ratio"
		printf "%-48s %12.0f %12.0f %7.2fx\n", cont, nsfor[cont], nsfor[op], nsfor[op] / nsfor[cont]
	}
}' "$out"

echo "wrote $out"
