#!/bin/sh
# Benchmark snapshot: runs the contention, runtime, simulator, and
# steal-hot-path benchmarks and writes a machine-readable BENCH_<label>.json
# (one object per benchmark: op, ns_per_op, allocs_per_op, workers, engine)
# for cross-commit comparison.
#
# usage: scripts/bench.sh [label]     (default label: short git commit)
#        BENCHTIME=1s scripts/bench.sh soak
set -eu

cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD)}"
benchtime="${BENCHTIME:-0.3s}"
out="BENCH_${label}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run='^$' -benchtime="$benchtime" -benchmem \
	-bench='^(BenchmarkGrtContention|BenchmarkGrtTrace|BenchmarkRuntimeForkJoin|BenchmarkSimulatorPerScheduler)$' \
	. | tee "$tmp"
# Second pass with the rtrace hook sites compiled out entirely: the
# BenchmarkGrtTrace/pN/compiledout row is the true zero-instrumentation
# baseline for the tracing-overhead comparison.
go test -tags grtnotrace -run='^$' -benchtime="$benchtime" -benchmem \
	-bench='^BenchmarkGrtTrace$' \
	. | tee -a "$tmp"
go test -run='^$' -benchtime="$benchtime" -benchmem \
	-bench='^(BenchmarkListKth|BenchmarkListInsertDelete|BenchmarkStealPattern)$' \
	./internal/deque/ | tee -a "$tmp"
go test -run='^$' -benchtime="$benchtime" -benchmem \
	-bench='^BenchmarkStealCycle$' \
	./internal/core/ | tee -a "$tmp"

# Fold "Benchmark<Name>/<sub>-<gomaxprocs> N v1 unit1 v2 unit2 ..." lines
# into JSON. workers comes from a pN path element (0 = not applicable);
# engine is coarse/fine for the runtime benchmarks, sim for the simulator,
# struct for the bare data-structure benchmarks.
awk -v label="$label" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""
	for (i = 3; i < NF; i += 2) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	workers = 0
	if (match(name, /\/p[0-9]+/)) workers = substr(name, RSTART + 2, RLENGTH - 2)
	engine = "struct"
	if (name ~ /\/coarse/) engine = "coarse"
	else if (name ~ /\/fine/) engine = "fine"
	else if (name ~ /^BenchmarkGrtTrace/) engine = "fine"
	else if (name ~ /^BenchmarkRuntimeForkJoin/) { engine = "fine"; workers = 4 }
	else if (name ~ /^BenchmarkSimulator/) { engine = "sim"; workers = 8 }
	printf "%s{\"op\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"workers\": %s, \"engine\": \"%s\"}",
		(n++ ? ",\n  " : ""), name, ns, (allocs == "" ? "null" : allocs), workers, engine
}
BEGIN { printf "{\n \"label\": \"" label "\",\n \"benchmarks\": [\n  " }
END { printf "\n ]\n}\n" }
' "$tmp" > "$out"

echo "wrote $out"
