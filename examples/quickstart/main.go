// Quickstart: run real fork-join Go code on the DFDeques user-level
// thread runtime.
//
// The program sorts a slice with a parallel mergesort in which every
// recursive call is its own lightweight thread — the programming style the
// paper advocates: express all parallelism, let the scheduler throttle it.
// It prints the scheduler statistics so you can see how few threads were
// simultaneously live despite the thousands created.
//
// Usage: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"dfdeques"
)

const cutoff = 256 // sort runs below this serially

func mergesort(t *dfdeques.Thread, s, buf []int) {
	if len(s) <= cutoff {
		sort.Ints(s)
		return
	}
	mid := len(s) / 2
	// Fork the left half; the child preempts us (depth-first), and an
	// idle worker steals the continuation.
	h := t.Fork(func(c *dfdeques.Thread) { mergesort(c, s[:mid], buf[:mid]) })
	mergesort(t, s[mid:], buf[mid:])
	t.Join(h)
	merge(s, mid, buf)
}

func merge(s []int, mid int, buf []int) {
	copy(buf, s)
	i, j := 0, mid
	for k := range s {
		switch {
		case i >= mid:
			s[k] = buf[j]
			j++
		case j >= len(s):
			s[k] = buf[i]
			i++
		case buf[i] <= buf[j]:
			s[k] = buf[i]
			i++
		default:
			s[k] = buf[j]
			j++
		}
	}
}

func main() {
	const n = 1 << 17
	data := rand.New(rand.NewSource(42)).Perm(n)
	buf := make([]int, n)

	stats, err := dfdeques.Run(dfdeques.RuntimeConfig{
		Workers: 8,
		Sched:   dfdeques.SchedDFDeques,
		K:       50_000,
		Seed:    1,
	}, func(t *dfdeques.Thread) {
		mergesort(t, data, buf)
	})
	if err != nil {
		panic(err)
	}
	if !sort.IntsAreSorted(data) {
		panic("not sorted")
	}

	fmt.Printf("sorted %d ints with parallel mergesort under DFDeques(50k)\n", n)
	fmt.Printf("  threads created:        %d\n", stats.TotalThreads)
	fmt.Printf("  max simultaneously live: %d\n", stats.MaxLiveThreads)
	fmt.Printf("  steals:                 %d\n", stats.Steals)
	fmt.Printf("  own-deque dispatches:   %d\n", stats.LocalDispatches)
}
