// Pipeline: a bounded-buffer producer/consumer pipeline on the real
// runtime, with the parallel cache complexity of the resulting schedule
// measured from its trace.
//
// A chain of stages transforms a stream of items; each (stage, item) cell
// is its own lightweight thread that reads its input future, transforms
// the item, and writes its output future. A second grid of ack futures
// adds backpressure: stage s may start item i only after stage s+1 has
// consumed item i-buffer, so at most `buffer` items are ever in flight
// between adjacent stages — the scheduler sees threads blocking on
// *downstream progress*, not just on data.
//
// Every cell declares the bytes it moves with Thread.Touch. The trace
// summary replays those touches through per-worker simulated caches and
// against the serial depth-first baseline, reporting how many extra cache
// misses the parallel schedule cost — the paper's Fig. 1 locality story,
// measured on this run instead of proxied. Run once under DFDeques(K) and
// once under plain work stealing to compare.
//
// Usage: go run ./examples/pipeline
package main

import (
	"fmt"

	"dfdeques"
)

const (
	workers  = 4
	stages   = 6
	items    = 64
	buffer   = 4    // max in-flight items between adjacent stages
	itemSize = 2048 // bytes each cell reads from its input block
	// stages × items × itemSize = 768 KB — deliberately larger than the
	// replay's simulated 512 KB per-worker cache, so eviction order (and
	// therefore the schedule) shows up in the miss counts.
)

// blk names the data block holding stage s's output for item i (block ids
// are arbitrary but must be nonzero and stable).
func blk(s, i int) int32 { return int32(1 + s*items + i) }

func run(name string, sched dfdeques.SchedKind, k int64) {
	rec := dfdeques.NewTraceRecorder(workers, 1<<16)

	// cells[s][i] carries item i's value after stage s; acks[s][i] is set
	// when stage s+1 has consumed cells[s][i] — the backpressure token.
	var cells, acks [stages][items]dfdeques.Future
	var mu dfdeques.Mutex
	sum := 0

	stats, err := dfdeques.Run(dfdeques.RuntimeConfig{
		Workers: workers, Sched: sched, K: k, Seed: 11, Probe: rec,
	}, func(t *dfdeques.Thread) {
		// Fork every cell in the WORST order (reverse dependency order),
		// so almost every cell starts before its inputs exist and the
		// wavefront emerges from the futures alone.
		var hs []*dfdeques.Thread
		for s := stages - 1; s >= 0; s-- {
			for i := items - 1; i >= 0; i-- {
				s, i := s, i
				hs = append(hs, t.Fork(func(c *dfdeques.Thread) {
					// Backpressure: wait for the downstream consumer to
					// drain the buffer slot this item will occupy.
					if s < stages-1 && i >= buffer {
						acks[s][i-buffer].Get(c)
					}
					// Input: the source stream for stage 0, the previous
					// stage's output future otherwise.
					v := i + 1
					if s > 0 {
						v = cells[s-1][i].Get(c).(int)
						c.Touch(blk(s-1, i), itemSize) // read upstream block
						acks[s-1][i].Set(c, true)      // free its buffer slot
					}
					v = (v*31 + s) % 1_000_003
					c.Touch(blk(s, i), itemSize) // write this cell's block
					if s == stages-1 {
						mu.Lock(c)
						sum += v
						mu.Unlock(c)
					} else {
						cells[s][i].Set(c, v)
					}
				}))
			}
		}
		for j := len(hs) - 1; j >= 0; j-- {
			t.Join(hs[j])
		}
	})
	if err != nil {
		panic(err)
	}
	if _, err := dfdeques.VerifyTrace(rec); err != nil {
		panic(fmt.Sprintf("%s: trace replay failed: %v", name, err))
	}
	tr := dfdeques.SummarizeTrace(rec)

	fmt.Printf("%s: %d stages × %d items (buffer %d) → checksum %d\n",
		name, stages, items, buffer, sum)
	fmt.Printf("  cell threads:   %d, max live %d, steals %d\n",
		stats.TotalThreads-1, stats.MaxLiveThreads, stats.Steals)
	if tr.Cache == nil {
		fmt.Println("  (no cache report: tracing compiled out)")
		return
	}
	fmt.Printf("  cache misses:   %d parallel vs %d serial-1DF (+%d from %d deviations)\n",
		tr.Cache.ParMisses, tr.Cache.SeqMisses, tr.Cache.ExtraMisses, tr.Cache.Deviations)
}

func main() {
	run("DFDeques(4KB)", dfdeques.SchedDFDeques, 4096)
	run("work stealing ", dfdeques.SchedWS, 0)
	fmt.Println("\nThe wavefront emerged from future dependencies alone; the ack")
	fmt.Println("futures kept at most", buffer, "items in flight per stage pair, and the")
	fmt.Println("trace replay scored each schedule's locality against the 1DF order.")
}
