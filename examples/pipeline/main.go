// Pipeline: dataflow with futures on the real runtime — the
// synchronization-variable extension the paper references in §1 ([4]:
// depth-first scheduling extended to futures and I-structures).
//
// A chain of stages transforms a stream of items; each (stage, item) cell
// is its own lightweight thread that reads its two input futures (same
// stage, previous item — previous stage, same item) and writes its output
// future. The scheduler, not the program, decides the wavefront order; a
// cell that reads an unset future simply suspends and frees its worker.
//
// Usage: go run ./examples/pipeline
package main

import (
	"fmt"

	"dfdeques"
)

const (
	stages = 6
	items  = 24
)

func main() {
	// cell[s][i] carries the checksum after stage s has processed item i.
	cells := make([][]dfdeques.Future, stages+1)
	for s := range cells {
		cells[s] = make([]dfdeques.Future, items+1)
	}

	stats, err := dfdeques.Run(dfdeques.RuntimeConfig{
		Workers: 8,
		Sched:   dfdeques.SchedDFDeques,
		Seed:    11,
	}, func(t *dfdeques.Thread) {
		// Seed the boundary futures.
		for s := 0; s <= stages; s++ {
			cells[s][0].Set(t, 1)
		}
		for i := 1; i <= items; i++ {
			cells[0][i].Set(t, i)
		}
		// Fork one thread per (stage, item) cell — in the WORST order
		// (reverse dependency order), so almost every cell starts before
		// its inputs exist. The futures express the true dependencies;
		// the schedule is a wavefront regardless.
		var hs []*dfdeques.Thread
		for s := stages; s >= 1; s-- {
			for i := items; i >= 1; i-- {
				s, i := s, i
				hs = append(hs, t.Fork(func(c *dfdeques.Thread) {
					left := cells[s][i-1].Get(c).(int)
					up := cells[s-1][i].Get(c).(int)
					cells[s][i].Set(c, (left*31+up)%1_000_003)
				}))
			}
		}
		for j := len(hs) - 1; j >= 0; j-- {
			t.Join(hs[j])
		}
	})
	if err != nil {
		panic(err)
	}

	// Read the last cell through a tiny follow-up run (futures are read
	// from inside threads; the value is already set so this cannot block).
	final := 0
	_, err = dfdeques.Run(dfdeques.RuntimeConfig{Workers: 1, Sched: dfdeques.SchedFIFO}, func(t *dfdeques.Thread) {
		final = cells[stages][items].Get(t).(int)
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("pipeline of %d stages × %d items computed checksum %d\n", stages, items, final)
	fmt.Printf("  cell threads:       %d\n", stats.TotalThreads-1)
	fmt.Printf("  max simultaneously live: %d\n", stats.MaxLiveThreads)
	fmt.Printf("  steals:             %d\n", stats.Steals)
	fmt.Println("\nThe wavefront emerged from future dependencies alone; threads")
	fmt.Println("blocked on unset futures parked without burning a processor.")
}
