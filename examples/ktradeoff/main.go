// Ktradeoff: reproduce the paper's §5.3 experiment on your own program —
// sweep the memory threshold K and watch running time fall while memory
// use rises (Figure 15's trade-off), all through the public API.
//
// The program is a divide-and-conquer computation whose nodes allocate
// temporaries that shrink geometrically with depth (the §6 synthetic
// benchmark family).
//
// Usage: go run ./examples/ktradeoff
package main

import (
	"fmt"

	"dfdeques"
)

func dnc(levels int, space, work int64) *dfdeques.Program {
	b := dfdeques.NewProgram("node").Alloc(space).Work(work + 1)
	if levels > 0 {
		left := dnc(levels-1, space/2, work/2)
		right := dnc(levels-1, space/2, work/2)
		b.Fork(left).Fork(right).Join().Join()
	}
	return b.Free(space).Spec()
}

func main() {
	prog := dnc(12, 64<<10, 2048)
	sm := dfdeques.MeasureProgram(prog)
	fmt.Printf("d&c program: W=%d D=%d S1=%d bytes\n\n", sm.W, sm.D, sm.HeapHW)

	fmt.Printf("%-10s  %10s  %12s  %14s  %8s\n",
		"K (bytes)", "time", "space (B)", "space/S1", "steals")
	for _, k := range []int64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 0} {
		met, err := dfdeques.Simulate(prog, dfdeques.SimConfig{
			Procs:     8,
			Scheduler: "DFD",
			K:         k,
			Seed:      7,
		})
		if err != nil {
			panic(err)
		}
		label := fmt.Sprint(k)
		if k == 0 {
			label = "inf"
		}
		fmt.Printf("%-10s  %10d  %12d  %14.2f  %8d\n",
			label, met.Steps, met.HeapHW, float64(met.HeapHW)/float64(sm.HeapHW), met.Steals)
	}
	fmt.Println("\nSmall K ⇒ space near the serial requirement S1 but more steals")
	fmt.Println("and dummy-thread delays; large K ⇒ work-stealing behaviour:")
	fmt.Println("fewer steals (better locality) at p-fold memory. Pick K to")
	fmt.Println("taste — that is the paper's user-adjustable trade-off.")
}
