// Matmul: compare the four schedulers on the paper's most memory-hungry
// benchmark — recursive blocked dense matrix multiply with per-node
// temporaries (§5.1, Figs. 13–15) — using the machine simulator.
//
// The example builds its own matmul Program through the public API (the
// same shape as internal/workload.DenseMM, smaller), then simulates it
// under each scheduler and prints time, space, steals, and scheduling
// granularity side by side. Note how DFDeques(K) gets work-stealing-like
// granularity at depth-first-like memory.
//
// Usage: go run ./examples/matmul
package main

import (
	"fmt"

	"dfdeques"
)

// multiply builds the Program for an n×n blocked multiply.
func multiply(n int) *dfdeques.Program {
	if n <= 16 {
		work := int64(n) * int64(n) * int64(n) / 16
		return dfdeques.NewProgram("mm-leaf").Work(work + 1).Spec()
	}
	h := n / 2
	sub := func() *dfdeques.Program { return multiply(h) }
	eight := dfdeques.ParFor("mm-products", 8, func(int) *dfdeques.Program { return sub() })
	tmp := int64(n) * int64(n) * 8
	return dfdeques.NewProgram("mm-node").
		Alloc(tmp).
		Fork(eight).Join().
		Work(int64(n)*int64(n)/16 + 1).
		Free(tmp).
		Spec()
}

func main() {
	prog := multiply(128)
	sm := dfdeques.MeasureProgram(prog)
	fmt.Printf("dense MM 128×128: W=%d actions, D=%d, S1=%d bytes, %d threads\n\n",
		sm.W, sm.D, sm.HeapHW, sm.TotalThreads)

	fmt.Printf("%-8s  %10s  %12s  %8s  %12s\n", "sched", "time", "space (B)", "steals", "granularity")
	for _, s := range []string{"ADF", "DFD", "DFD-inf", "WS", "FIFO"} {
		met, err := dfdeques.Simulate(prog, dfdeques.SimConfig{
			Procs:     8,
			Scheduler: s,
			K:         8_000,
			Seed:      1,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s  %10d  %12d  %8d  %12.1f\n",
			s, met.Steps, met.HeapHW, met.Steals, met.SchedGranularity())
	}
	fmt.Println("\nDFD sits between ADF (low space, small granularity) and")
	fmt.Println("WS/DFD-inf (high space, large granularity); FIFO shows the")
	fmt.Println("breadth-first blowup the paper's Figure 11 reports.")
}
