// Treebuild: the Figure 17 scenario on the real runtime — a lock-heavy
// parallel tree build where threads contend on scheduler-mediated blocking
// mutexes (the paper's Barnes-Hut tree-construction phase).
//
// Each worker thread inserts a batch of keys into a shared fixed-shape
// tree whose top cells are protected by one Mutex each. Because DFDeques
// keeps more deques than processors, a thread that blocks on a lock simply
// frees its processor for other work — the property that lets the paper's
// scheduler support blocking synchronization gracefully (§7, Fig. 17).
//
// Usage: go run ./examples/treebuild
package main

import (
	"fmt"
	"math/rand"

	"dfdeques"
)

const (
	cells     = 64
	particles = 1 << 13
	chunk     = 64
)

type cell struct {
	mu    dfdeques.Mutex
	count int
}

func main() {
	for _, kind := range []dfdeques.SchedKind{dfdeques.SchedDFDeques, dfdeques.SchedADF, dfdeques.SchedFIFO} {
		tree := make([]cell, cells)
		rng := rand.New(rand.NewSource(9))
		targets := make([]int, particles)
		for i := range targets {
			if rng.Intn(4) != 0 {
				targets[i] = rng.Intn(cells / 8) // clustered: contended cells
			} else {
				targets[i] = rng.Intn(cells)
			}
		}

		stats, err := dfdeques.Run(dfdeques.RuntimeConfig{
			Workers: 8,
			Sched:   kind,
			K:       50_000,
			Seed:    3,
		}, func(t *dfdeques.Thread) {
			var insert func(t *dfdeques.Thread, lo, hi int)
			insert = func(t *dfdeques.Thread, lo, hi int) {
				if hi-lo <= chunk {
					for _, c := range targets[lo:hi] {
						tree[c].mu.Lock(t)
						tree[c].count++
						tree[c].mu.Unlock(t)
					}
					return
				}
				mid := (lo + hi) / 2
				h := t.Fork(func(c *dfdeques.Thread) { insert(c, lo, mid) })
				insert(t, mid, hi)
				t.Join(h)
			}
			insert(t, 0, particles)
		})
		if err != nil {
			panic(err)
		}

		total := 0
		for i := range tree {
			total += tree[i].count
		}
		if total != particles {
			panic(fmt.Sprintf("%v: lost updates: %d != %d", kind, total, particles))
		}
		fmt.Printf("%-9v inserted %d particles: threads=%d maxLive=%d steals=%d\n",
			kind, total, stats.TotalThreads, stats.MaxLiveThreads, stats.Steals)
	}
	fmt.Println("\nEvery scheduler preserves mutual exclusion; DFDeques keeps the")
	fmt.Println("live-thread count low even though blocked threads pile up on locks.")
}
