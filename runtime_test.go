package dfdeques_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"dfdeques"
)

func TestRuntimeConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   dfdeques.RuntimeConfig
		field string // "" means valid
	}{
		{"zero value", dfdeques.RuntimeConfig{}, ""},
		{"typical", dfdeques.RuntimeConfig{Workers: 8, Sched: dfdeques.SchedDFDeques, K: 50_000}, ""},
		{"ws without k", dfdeques.RuntimeConfig{Workers: 2, Sched: dfdeques.SchedWS}, ""},
		{"negative workers", dfdeques.RuntimeConfig{Workers: -1}, "Workers"},
		{"negative k", dfdeques.RuntimeConfig{K: -5}, "K"},
		{"unknown sched", dfdeques.RuntimeConfig{Sched: dfdeques.SchedKind(99)}, "Sched"},
		{"ws with k", dfdeques.RuntimeConfig{Sched: dfdeques.SchedWS, K: 1000}, "K"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			var ce *dfdeques.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate = %v (%T), want *ConfigError", err, err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
			if !strings.Contains(err.Error(), tc.field+": ") {
				t.Fatalf("error %q does not name the field", err)
			}
		})
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	var ce *dfdeques.ConfigError
	_, err := dfdeques.Run(dfdeques.RuntimeConfig{Sched: dfdeques.SchedWS, K: 7}, func(*dfdeques.Thread) {})
	if !errors.As(err, &ce) {
		t.Fatalf("Run = %v, want *ConfigError", err)
	}
	if _, err := dfdeques.NewRuntime(dfdeques.RuntimeConfig{Workers: -2}); !errors.As(err, &ce) {
		t.Fatalf("NewRuntime = %v, want *ConfigError", err)
	}
}

func TestRuntimeLifecycleFacade(t *testing.T) {
	rt, err := dfdeques.NewRuntime(dfdeques.RuntimeConfig{Workers: 4, Sched: dfdeques.SchedDFDeques, K: 4096})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(n int64, out *int64) func(*dfdeques.Thread) {
		return func(r *dfdeques.Thread) {
			var rec func(t *dfdeques.Thread, lo, hi int64) int64
			rec = func(t *dfdeques.Thread, lo, hi int64) int64 {
				if hi-lo <= 4 {
					var s int64
					for i := lo; i < hi; i++ {
						s += i
					}
					return s
				}
				mid := (lo + hi) / 2
				var left int64
				h := t.Fork(func(c *dfdeques.Thread) { left = rec(c, lo, mid) })
				right := rec(t, mid, hi)
				t.Join(h)
				return left + right
			}
			*out = rec(r, 0, n)
		}
	}
	var a, b int64
	j1, err := rt.Submit(context.Background(), sum(100, &a))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := rt.Submit(context.Background(), sum(200, &b))
	if err != nil {
		t.Fatal(err)
	}
	s1, err1 := j1.Wait()
	s2, err2 := j2.Wait()
	if err1 != nil || err2 != nil {
		t.Fatalf("waits: %v, %v", err1, err2)
	}
	if a != 4950 || b != 19900 {
		t.Fatalf("sums = %d, %d; want 4950, 19900", a, b)
	}
	if s1.TotalThreads < 2 || s2.TotalThreads < 2 {
		t.Fatalf("per-job thread counts = %d, %d; want > 1", s1.TotalThreads, s2.TotalThreads)
	}
	if rs := rt.Stats(s1); rs.TotalThreads != s1.TotalThreads {
		t.Fatalf("Stats merge lost the job accounting: %d vs %d", rs.TotalThreads, s1.TotalThreads)
	}
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := rt.Submit(context.Background(), func(*dfdeques.Thread) {}); !errors.Is(err, dfdeques.ErrShutdown) {
		t.Fatalf("Submit after Shutdown = %v, want ErrShutdown", err)
	}
}

func TestPublicTraceSurface(t *testing.T) {
	rec := dfdeques.NewTraceRecorder(2, 1<<14)
	_, err := dfdeques.Run(dfdeques.RuntimeConfig{
		Workers: 2, Sched: dfdeques.SchedDFDeques, K: 256, Seed: 3, Probe: rec,
	}, func(r *dfdeques.Thread) {
		h := r.Fork(func(c *dfdeques.Thread) { c.Alloc(64); c.Free(64) })
		r.Alloc(1000) // > K: dummy transformation
		r.Free(1000)
		r.Join(h)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dfdeques.VerifyTrace(rec)
	if err != nil {
		t.Fatalf("VerifyTrace: %v", err)
	}
	if !rep.OrderingExact || rep.Jobs != 1 {
		t.Fatalf("report = %+v, want exact ordering and 1 job", rep)
	}
	sum := dfdeques.SummarizeTrace(rec)
	if sum.Threads != rep.Threads {
		t.Fatalf("summary threads %d != replay threads %d", sum.Threads, rep.Threads)
	}
	var buf bytes.Buffer
	if err := dfdeques.ExportTrace(&buf, rec); err != nil {
		t.Fatalf("ExportTrace: %v", err)
	}
	rep2, err := dfdeques.VerifyTraceFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("VerifyTraceFile: %v", err)
	}
	if rep2.Threads != rep.Threads {
		t.Fatalf("file replay threads %d != in-memory %d", rep2.Threads, rep.Threads)
	}
}

// TestNewMemBudgetValidation pins the budget facade's configuration
// contract: 0 means no quota (the RuntimeConfig.K convention), negative
// is a *ConfigError naming MemBudget.
func TestNewMemBudgetValidation(t *testing.T) {
	b, err := dfdeques.NewMemBudget(0)
	if err != nil || b == nil {
		t.Fatalf("NewMemBudget(0) = %v, %v; want unlimited budget", b, err)
	}
	if b.Limit() != 0 {
		t.Fatalf("unlimited budget Limit = %d, want 0", b.Limit())
	}
	_, err = dfdeques.NewMemBudget(-4096)
	var ce *dfdeques.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("NewMemBudget(-4096) = %v, want *ConfigError", err)
	}
	if ce.Field != "MemBudget" || !strings.Contains(ce.Reason, "0 means no quota") {
		t.Fatalf("wrong error: %+v", ce)
	}
}

// TestSubmitInBudgetIsolation runs the public multi-tenant story: two
// budgets on one runtime, the over-allocating job dies with ErrBudget,
// the other tenant's job is untouched, and the killed job's balance
// settles back so the budget is reusable.
func TestSubmitInBudgetIsolation(t *testing.T) {
	rt, err := dfdeques.NewRuntime(dfdeques.RuntimeConfig{Workers: 2, Sched: dfdeques.SchedDFDeques, K: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := rt.Shutdown(context.Background()); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	small, err := dfdeques.NewMemBudget(8192)
	if err != nil {
		t.Fatal(err)
	}
	big, err := dfdeques.NewMemBudget(1 << 20)
	if err != nil {
		t.Fatal(err)
	}

	overrun := func(th *dfdeques.Thread) {
		for i := 0; i < 100; i++ {
			th.Alloc(512)
		}
	}
	polite := func(th *dfdeques.Thread) {
		h := th.Fork(func(c *dfdeques.Thread) { c.Alloc(4096); c.Free(4096) })
		th.Alloc(256)
		th.Free(256)
		th.Join(h)
	}

	j1, err := rt.SubmitIn(context.Background(), small, overrun)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := rt.SubmitIn(context.Background(), big, polite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(); !errors.Is(err, dfdeques.ErrBudget) {
		t.Fatalf("overrunning job: want ErrBudget, got %v", err)
	}
	if _, err := j2.Wait(); err != nil {
		t.Fatalf("polite job must be unaffected: %v", err)
	}
	if small.Kills() != 1 {
		t.Fatalf("Kills = %d, want 1", small.Kills())
	}
	if small.HeapLive() != 0 {
		t.Fatalf("killed job's balance must settle, live = %d", small.HeapLive())
	}
	if small.HeapHW() <= 8192 {
		t.Fatalf("high water should record the overrun, got %d", small.HeapHW())
	}

	// The settled budget admits new jobs: SubmitIn with a nil budget
	// behaves exactly like Submit.
	j3, err := rt.SubmitIn(context.Background(), small, polite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j3.Wait(); err != nil {
		t.Fatalf("budget must be reusable after a kill: %v", err)
	}
	j4, err := rt.SubmitIn(context.Background(), nil, polite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j4.Wait(); err != nil {
		t.Fatalf("nil budget: %v", err)
	}
}
